"""The rule registry: the stack's invariants as AST checks.

Each rule class documents the contract it enforces and the PR that
introduced that contract.  Rules are deliberately heuristic — they key
on the project's own naming conventions (``ckey``, ``*pool*.submit``,
``lease_shared``) rather than attempting type inference — and every
rule except the built-in ``parse``/``pragma`` meta-rules can be
suppressed per-line with a justified pragma::

    # repro-lint: disable=rule-name -- one-line reason it is safe
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .base import Rule
from .model import Finding, Project, SourceFile

__all__ = ["ALL_RULES", "Rule", "UNSUPPRESSABLE", "iter_rules"]

# Findings from these rules cannot be pragma-suppressed: the first is a
# broken file, the second polices the pragmas themselves.
UNSUPPRESSABLE = frozenset({"parse", "pragma"})


# --------------------------------------------------------------------------
# shared AST helpers


def _walk_scope(body: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements/expressions without descending into nested
    function or lambda bodies (those are their own scopes)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _last_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _awaited_call_ids(tree: ast.AST) -> set[int]:
    """ids of Call nodes that are the direct operand of ``await``."""
    return {
        id(n.value)
        for n in ast.walk(tree)
        if isinstance(n, ast.Await) and isinstance(n.value, ast.Call)
    }


def _func_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function definition in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _has_marker(node: ast.AST, marker: str) -> bool:
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if _last_name(target) == marker:
            return True
    return False


# --------------------------------------------------------------------------
# R1


class NoBlockingInAsync(Rule):
    """Blocking calls are forbidden inside ``async def`` bodies in
    ``repro/serve/``.

    Invariant (PR 4): the asyncio event loop owns only scheduling
    state; anything that can block — sleeps, sqlite, file I/O,
    subprocesses, fleet waits, bare lock acquires — must run on the
    single coordinator thread via ``Scheduler._run_coord`` so one slow
    job cannot stall admission, cancellation, and deadline handling for
    every other client.  Only the coroutine's own body is inspected:
    nested ``def`` helpers execute on whatever thread calls them.
    """

    name = "no-blocking-in-async"

    _BLOCKING_ATTRS = frozenset({"acquire", "wait", "run_query", "sweep_serial"})

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under("repro/serve/"):
            if file.tree is None:
                continue
            awaited = _awaited_call_ids(file.tree)
            for node in ast.walk(file.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_body(file, node, awaited)

    def _check_body(
        self, file: SourceFile, func: ast.AsyncFunctionDef, awaited: set[int]
    ) -> Iterator[Finding]:
        for node in _walk_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted == "time.sleep":
                yield self.finding(
                    file, node,
                    f"time.sleep inside 'async def {func.name}' blocks the "
                    "event loop; use 'await asyncio.sleep' or _run_coord",
                )
            elif dotted is not None and dotted.startswith(("sqlite3.", "subprocess.")):
                yield self.finding(
                    file, node,
                    f"blocking {dotted.split('.')[0]} call inside "
                    f"'async def {func.name}'; route through the coordinator "
                    "thread (_run_coord)",
                )
            elif isinstance(node.func, ast.Name) and node.func.id == "open":
                yield self.finding(
                    file, node,
                    f"file I/O via open() inside 'async def {func.name}' "
                    "blocks the event loop; route through _run_coord",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BLOCKING_ATTRS
                and id(node) not in awaited
            ):
                yield self.finding(
                    file, node,
                    f"non-awaited .{node.func.attr}() inside "
                    f"'async def {func.name}' can block the event loop; "
                    "await the asyncio variant or route through _run_coord",
                )


# --------------------------------------------------------------------------
# R2


class LeaseLifecycle(Rule):
    """Shared-memory leases and bus checkouts must have an owner.

    Invariant (PRs 1–3): ``export_shared()`` / ``lease_shared()`` /
    ``SharedStoreLease(...)`` pin POSIX shared-memory segments and
    ``*.acquire(...)`` checks a ThresholdBus out of its pool; each
    result must be bound into a ``with`` block, released/closed in the
    binding scope, handed to another call or object that owns its close
    path, returned/yielded to the caller, or referenced from a
    ``try/finally``.  A bare-expression acquisition (or a binding with
    none of those escape paths) leaks the segment until interpreter
    exit — on real networks that is hundreds of MB of /dev/shm.
    The escape analysis is per-scope and name-based, so exotic flows
    (rebinding through containers, conditional aliasing) may need a
    justified pragma.
    """

    name = "lease-lifecycle"

    _ACQUIRE_ATTRS = frozenset({"export_shared", "lease_shared", "acquire"})
    _CLOSERS = frozenset(
        {"close", "release", "unlink", "shutdown", "terminate", "detach", "free"}
    )

    def _is_acquisition(self, node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        name = _last_name(node.func)
        if name in self._ACQUIRE_ATTRS or name == "SharedStoreLease":
            return name
        return None

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project:
            if file.tree is None:
                continue
            for scope in _func_scopes(file.tree):
                yield from self._check_scope(file, scope)

    def _check_scope(self, file: SourceFile, scope: ast.AST) -> Iterator[Finding]:
        body = list(getattr(scope, "body", []))
        nodes = list(_walk_scope(body))
        for node in nodes:
            if isinstance(node, ast.Expr):
                name = self._is_acquisition(node.value)
                if name is not None:
                    yield self.finding(
                        file, node,
                        f"result of {name}(...) discarded — bind it and "
                        "release it (with block, try/finally, or owner object)",
                    )
            elif isinstance(node, ast.Assign):
                acq = self._is_acquisition(node.value)
                if acq is None:
                    continue
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue  # stored on an object/container that owns it
                if not isinstance(target, ast.Name):
                    continue
                if not self._escapes(nodes, node, target.id):
                    yield self.finding(
                        file, node,
                        f"'{target.id}' = {acq}(...) is never entered, "
                        "released, returned, stored, or passed on in this "
                        "scope — the lease/bus leaks",
                    )

    def _escapes(
        self, nodes: list[ast.AST], assign: ast.Assign, name: str
    ) -> bool:
        for node in nodes:
            if isinstance(node, ast.withitem) and _contains_name(
                node.context_expr, name
            ):
                return True
            if isinstance(node, ast.Call) and node is not assign.value:
                if any(_contains_name(a, name) for a in node.args):
                    return True
                if any(_contains_name(k.value, name) for k in node.keywords):
                    return True
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._CLOSERS
                    and _contains_name(node.func.value, name)
                ):
                    return True
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _contains_name(node.value, name):
                    return True
            if isinstance(node, ast.Assign) and node is not assign:
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and _contains_name(node.value, name):
                    return True
            if isinstance(node, ast.Try) and any(
                _contains_name(s, name) for s in node.finalbody
            ):
                return True
        return False


# --------------------------------------------------------------------------
# R3


class CoordinatorOwnership(Rule):
    """Functions marked ``@coordinator_only`` may only be *called* (in
    ``repro/serve/``) from other marked functions or the dispatch shim.

    Invariant (PR 4): one coordinator thread owns every engine/hub/
    cache internal — planning, bus checkouts, leases and pins, result
    caches, serial execution.  The event loop reaches them exclusively
    by handing a function *reference* to ``Scheduler._run_coord``.
    This rule collects every ``@coordinator_only`` definition in the
    project, then walks all call sites under ``repro/serve/``: a call
    to a marked name is legal only from inside another marked function
    or ``_run_coord`` itself.  ``await``-ed calls are exempt — marked
    functions are synchronous, so an awaited name is the scheduler's
    async wrapper, not the engine internal.  Layers below serve are
    not constrained: in blocking ``engine.sweep()``/``hub.mine()`` use
    the calling thread *is* the coordinator.
    """

    name = "coordinator-only"

    def run(self, project: Project) -> Iterator[Finding]:
        marked: dict[str, str] = {}
        for file in project:
            if file.tree is None:
                continue
            for node in ast.walk(file.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _has_marker(node, "coordinator_only"):
                    marked.setdefault(node.name, f"{file.display}:{node.lineno}")
        if not marked:
            return
        for file in project.files_under("repro/serve/"):
            if file.tree is None:
                continue
            awaited = _awaited_call_ids(file.tree)
            yield from self._check_calls(
                file, file.tree.body, None, marked, awaited
            )

    def _check_calls(
        self,
        file: SourceFile,
        body: Iterable[ast.AST],
        enclosing: ast.AST | None,
        marked: dict[str, str],
        awaited: set[int],
    ) -> Iterator[Finding]:
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_calls(
                    file, node.body, node, marked, awaited
                )
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            name = _last_name(node.func)
            if name not in marked or id(node) in awaited:
                continue
            if self._caller_allowed(enclosing):
                continue
            where = (
                f"unmarked function '{enclosing.name}'"
                if enclosing is not None
                else "module level"
            )
            yield self.finding(
                file, node,
                f"coordinator-owned '{name}' (defined at {marked[name]}) "
                f"called from {where}; route through "
                "Scheduler._run_coord or mark the caller "
                "@coordinator_only",
            )

    @staticmethod
    def _caller_allowed(enclosing: ast.AST | None) -> bool:
        if enclosing is None:
            return False
        if getattr(enclosing, "name", "") == "_run_coord":
            return True
        return _has_marker(enclosing, "coordinator_only")


# --------------------------------------------------------------------------
# R4


class PickleBoundary(Rule):
    """No lambdas or locally-defined functions/classes may flow into
    ``PersistentWorkerPool.submit`` arguments or ``ShardTask`` fields.

    Invariant (PRs 1–2): shard tasks cross a process boundary and are
    pickled; lambdas, closures, and classes defined inside a function
    fail to pickle (or worse, unpickle against a stale module on the
    worker).  Everything a ``ShardTask`` carries, and every positional
    argument of a ``*pool*/*fleet*.submit(...)`` call, must be
    module-level and importable by name on the worker side.  The
    ``callback=``/``error_callback=`` keywords of ``submit`` are exempt
    — they run in the parent process and never cross the boundary.
    """

    name = "pickle-boundary"

    _PARENT_ONLY_KWARGS = frozenset({"callback", "error_callback"})

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project:
            if file.tree is None:
                continue
            yield from self._check_scope(file, file.tree.body, frozenset())

    def _check_scope(
        self, file: SourceFile, body: Iterable[ast.AST], local_defs: frozenset[str]
    ) -> Iterator[Finding]:
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = frozenset(
                    n.name
                    for n in _walk_scope(node.body)
                    if isinstance(
                        n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                )
                yield from self._check_scope(file, node.body, inner)
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node, local_defs)

    def _check_call(
        self, file: SourceFile, call: ast.Call, local_defs: frozenset[str]
    ) -> Iterator[Finding]:
        func = call.func
        pickled: list[ast.AST] = []
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            receiver = (_dotted(func.value) or "").lower()
            if "pool" not in receiver and "fleet" not in receiver:
                return
            pickled.extend(call.args)
            pickled.extend(
                kw.value
                for kw in call.keywords
                if kw.arg not in self._PARENT_ONLY_KWARGS
            )
        elif _last_name(func) == "ShardTask":
            pickled.extend(call.args)
            pickled.extend(kw.value for kw in call.keywords)
        else:
            return
        for expr in pickled:
            for node in ast.walk(expr):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        file, node,
                        "lambda cannot cross the worker pickle boundary; "
                        "use a module-level function",
                    )
                elif (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in local_defs
                ):
                    yield self.finding(
                        file, node,
                        f"locally-defined '{node.id}' cannot cross the "
                        "worker pickle boundary; define it at module level",
                    )


# --------------------------------------------------------------------------
# R5


class CkeyLayout(Rule):
    """Integer subscripts into canonical-key tuples are forbidden
    outside ``repro/engine/request.py`` and ``repro/core/miner.py``.

    Invariant (PR 2, frozen in PRs 5–6): the canonical key —
    ``("serial"|"sharded",) + MinerConfig.canonical_key`` — is the
    stack-wide cache/dedup identity, and its field order is decoded by
    warm-start dominance and delta migration.  Positional pokes like
    ``ckey[4]`` scattered across layers make the layout impossible to
    evolve; all decoding must go through the ``CKEY_*`` constants,
    ``config_from_canonical_key``, or ``split_canonical_key`` in the
    two layout-owning modules.  Detection is name-based: subscripts
    with a literal integer index (or slice) on names matching
    ``ckey``/``canonical_key`` (with ``*_``/``_*`` variants) or on a
    direct ``.canonical_key`` call result.
    """

    name = "ckey-layout"

    _ALLOWED = frozenset({"repro/engine/request.py", "repro/core/miner.py"})

    @staticmethod
    def _is_ckey_name(name: str) -> bool:
        return (
            name in ("ckey", "canonical_key")
            or name.endswith(("_ckey", "_canonical_key"))
            or name.startswith("ckey_")
        )

    def _is_ckey_base(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return self._is_ckey_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._is_ckey_name(node.attr)
        if isinstance(node, ast.Call):
            return _last_name(node.func) == "canonical_key"
        return False

    @staticmethod
    def _is_int_index(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)
        ):
            return True
        if isinstance(node, ast.Slice):
            bounds = [b for b in (node.lower, node.upper) if b is not None]
            return bool(bounds) and all(
                CkeyLayout._is_int_index(b) for b in bounds
            )
        return False

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project:
            if file.tree is None or file.rel in self._ALLOWED:
                continue
            for node in ast.walk(file.tree):
                if (
                    isinstance(node, ast.Subscript)
                    and self._is_ckey_base(node.value)
                    and self._is_int_index(node.slice)
                ):
                    yield self.finding(
                        file, node,
                        "integer subscript into a canonical key outside the "
                        "layout-owning modules; use CKEY_* constants, "
                        "config_from_canonical_key, or split_canonical_key",
                    )


# --------------------------------------------------------------------------
# R6


class SwallowedException(Rule):
    """Bare ``except:`` / ``except Exception: pass`` is forbidden in
    ``repro/parallel/`` and ``repro/serve/``.

    Invariant (PRs 1 and 4): worker and scheduler failures must
    re-raise, log, record, or degrade explicitly — a silently swallowed
    broad exception in the fleet or the serving loop turns a crashed
    shard into a hung job or a wrong (partial) answer.  Narrow
    except clauses (``except FileNotFoundError: pass``) are fine, as is
    any broad handler whose body does real work.  Genuine best-effort
    teardown sites must carry a justified pragma.
    """

    name = "swallowed-exception"

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, h: ast.ExceptHandler) -> bool:
        if h.type is None:
            return True
        types = h.type.elts if isinstance(h.type, ast.Tuple) else [h.type]
        return any(
            isinstance(t, ast.Name) and t.id in self._BROAD for t in types
        )

    @staticmethod
    def _is_pass_only(h: ast.ExceptHandler) -> bool:
        return all(
            isinstance(s, ast.Pass)
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
            for s in h.body
        )

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under("repro/parallel/", "repro/serve/"):
            if file.tree is None:
                continue
            for node in ast.walk(file.tree):
                if (
                    isinstance(node, ast.ExceptHandler)
                    and self._is_broad(node)
                    and self._is_pass_only(node)
                ):
                    what = "bare except" if node.type is None else "broad except"
                    yield self.finding(
                        file, node,
                        f"{what} that swallows the error — re-raise, log, or "
                        "record the failure (or pragma with a justification)",
                    )


# --------------------------------------------------------------------------
# R7


class ObsNonblocking(Rule):
    """Metric/trace emission inside ``async def`` bodies in
    ``repro/serve/`` must stay on the registry's in-memory API.

    Invariant (PR 9): observability must never make the event loop
    slower than the thing it observes.  Counters, gauges, histograms
    and trace spans are plain in-memory mutations (and the render
    methods build their exposition in memory), so emitting them from a
    coroutine is free — but *persisting* them is not.  Any call that
    writes observability state to a file or database (``write_text``,
    ``dump``, ``flush``, ``record_bench_run``, ``append_history``, …)
    on a receiver whose name says metrics/registry/tracer/history must
    route through the coordinator (``_run_coord``) or happen outside
    the serving process entirely.  Detection is name-based, like every
    rule here: a persistence-verb call whose dotted receiver contains
    an observability token.
    """

    name = "obs-nonblocking"

    _PERSIST_VERBS = frozenset(
        {
            "write",
            "write_text",
            "write_bytes",
            "write_json",
            "dump",
            "save",
            "flush",
            "persist",
            "append_row",
        }
    )
    _DIRECT_CALLS = frozenset({"record_bench_run", "append_history"})
    _OBS_TOKENS = ("metric", "registry", "tracer", "trace", "history")

    @classmethod
    def _obs_receiver(cls, dotted: str) -> bool:
        parts = dotted.lower().split(".")
        return any(
            token in part for part in parts for token in cls._OBS_TOKENS
        )

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under("repro/serve/"):
            if file.tree is None:
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_body(file, node)

    def _check_body(
        self, file: SourceFile, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in _walk_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in self._DIRECT_CALLS
            ):
                yield self.finding(
                    file, node,
                    f"{node.func.id}() persists bench/obs state inside "
                    f"'async def {func.name}'; observability writes must "
                    "not run on the event loop — route through _run_coord",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._PERSIST_VERBS
            ):
                receiver = _dotted(node.func.value)
                if receiver is not None and self._obs_receiver(receiver):
                    yield self.finding(
                        file, node,
                        f"blocking .{node.func.attr}() on observability "
                        f"object '{receiver}' inside 'async def {func.name}'; "
                        "metric/trace emission on the event loop must stay "
                        "in-memory — persist via _run_coord or off-process",
                    )


# --------------------------------------------------------------------------
# built-in meta-rules


class ParseFailure(Rule):
    """A file the linter cannot parse is itself a finding.

    Built-in, unsuppressable: every rule silently skips unparseable
    files, so without this the brokenest file would be the cleanest.
    """

    name = "parse"

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project:
            if file.error is not None:
                yield Finding(
                    rule=self.name,
                    path=file.display,
                    line=file.error.lineno or 1,
                    col=(file.error.offset or 1) - 1,
                    message=f"syntax error: {file.error.msg}",
                )


class PragmaHygiene(Rule):
    """Every suppression pragma must name known rules and carry a
    ``-- justification``.

    Built-in, unsuppressable: the acceptance bar for this tool is that
    every shipped suppression is a reviewed, written-down decision —
    an unexplained or misspelled pragma is silent rot.
    """

    name = "pragma"

    def run(self, project: Project) -> Iterator[Finding]:
        known = set(ALL_RULES)
        for file in project:
            for pragma in file.pragmas.values():
                loc = dict(rule=self.name, path=file.display, line=pragma.line, col=0)
                if not pragma.rules:
                    yield Finding(
                        message="pragma names no rules "
                        "(use disable=rule[,rule...])",
                        **loc,
                    )
                for rule in pragma.rules:
                    if rule not in known:
                        yield Finding(
                            message=f"pragma names unknown rule '{rule}'",
                            **loc,
                        )
                if not pragma.justification:
                    yield Finding(
                        message="pragma is missing its '-- justification'",
                        **loc,
                    )


from .domains import CoordinatorOnlyTransitive  # noqa: E402
from .locks import LockOrder  # noqa: E402
from .taint import NoShmAcrossTransport, PickleTaint  # noqa: E402

ALL_RULES: dict[str, Rule] = {
    rule.name: rule
    for rule in (
        NoBlockingInAsync(),
        LeaseLifecycle(),
        CoordinatorOwnership(),
        PickleBoundary(),
        CkeyLayout(),
        SwallowedException(),
        ObsNonblocking(),
        ParseFailure(),
        PragmaHygiene(),
        CoordinatorOnlyTransitive(),
        LockOrder(),
        PickleTaint(),
        NoShmAcrossTransport(),
    )
}


def iter_rules() -> Iterator[Rule]:
    return iter(ALL_RULES.values())
