"""Project-wide symbol table and conservative call graph.

This is the shared substrate for every interprocedural rule
(:mod:`~repro.lint.domains`, :mod:`~repro.lint.locks`,
:mod:`~repro.lint.taint`): one pass over the project builds a symbol
table (every function/method/class, with decorators and markers), an
import map (including relative imports and re-exports through package
``__init__`` files — both ``from .mod import name`` and the PEP 562
``_LAZY`` table ``repro.serve`` uses), and a call graph whose edges
carry the *dispatch kind* of each call site:

``call``
    An ordinary synchronous call — runs on the caller's thread.
``partial``
    ``functools.partial(f, ...)`` — conservatively assumed to be
    invoked on the caller's thread.
``coord``
    A function *reference* handed to ``Scheduler._run_coord`` or
    ``loop.run_in_executor`` — runs on the coordinator thread.
``loop``
    A reference handed to ``call_soon`` / ``call_soon_threadsafe`` /
    ``call_later`` / ``call_at`` / ``create_task`` / ``ensure_future``
    — runs on the event loop.
``worker``
    A reference that crosses the process boundary: the target of
    ``pool.apply_async``, positional ``submit`` payloads on pool/fleet
    receivers, and ``Pool(initializer=...)``.
``any``
    A reference whose execution context is unknown: ``callback=`` /
    ``error_callback=`` keywords of ``submit``/``apply_async`` (they
    run on the pool's result-handler thread) and calls made inside
    ``lambda`` bodies (deferred to whoever invokes the lambda).

Soundness envelope (what the conservative analysis can miss): name
resolution is static and name-based — ``getattr(obj, name)()``, calls
through containers or dictionaries of functions, monkey-patched
attributes, and ``eval``-style dispatch produce **no** edges, so chains
routed through them are invisible to every downstream rule.  Receivers
of the form ``self.x`` are resolved through *field-type inference*:
``self.x = ClassName(...)`` assignments, ``self.x: T`` annotations, and
annotated ``__init__`` parameters type the field, and the call then
resolves only to methods of related classes; a field typed exclusively
by non-project values (stdlib constructors, literals, ``None``)
resolves to nothing.  ``super().m()`` resolves only to project base
classes.  Everything else falls back to *every* project method of that
name (over-approximate, never under-approximate, except for the
dynamic cases above); ``await``-ed attribute calls resolve only to
``async def`` candidates when any exist, matching the stack's
convention that a marked synchronous internal is never awaited
directly.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .model import Project, SourceFile

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ProgramAnalysis",
    "dotted",
    "last_name",
    "walk_scope",
]

MARKER = "coordinator_only"

#: Attribute names whose reference arguments run on the event loop.
_LOOP_DISPATCH = frozenset(
    {"call_soon", "call_soon_threadsafe", "call_later", "call_at",
     "create_task", "ensure_future"}
)
#: ``submit``/``apply_async`` keywords that run parent-side.
_PARENT_KWARGS = frozenset({"callback", "error_callback"})


# --------------------------------------------------------------------------
# shared AST helpers (duplicated from rules.py would be a cycle: rules
# imports the interprocedural rule classes, which import this module)


def walk_scope(body: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/lambda bodies."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def last_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_marker(node: ast.AST, marker: str) -> bool:
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if last_name(target) == marker:
            return True
    return False


def _decorator_names(node: ast.AST) -> tuple[str, ...]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = last_name(target)
        if name is not None:
            names.append(name)
    return tuple(names)


def _awaited_call_ids(tree: ast.AST) -> set[int]:
    return {
        id(n.value)
        for n in ast.walk(tree)
        if isinstance(n, ast.Await) and isinstance(n.value, ast.Call)
    }


def module_name(file: SourceFile) -> str:
    """Dotted module name from the package-relative path."""
    rel = file.rel
    if rel.endswith(".py"):
        rel = rel[:-3]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


# --------------------------------------------------------------------------
# symbol table


@dataclass
class FunctionInfo:
    """One function/method/nested def (or a module's top-level body)."""

    qname: str
    name: str
    module: str
    cls: str | None
    file: SourceFile
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Module
    is_async: bool
    decorators: tuple[str, ...] = ()
    parent: str | None = None  # enclosing function qname (nested defs)

    @property
    def is_marked(self) -> bool:
        return MARKER in self.decorators

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)

    def where(self) -> str:
        return f"{self.file.display}:{self.line}"


@dataclass
class ClassInfo:
    name: str
    module: str
    file: SourceFile
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One call (or dispatch) site: ``caller`` may run ``callee``."""

    caller: str  # FunctionInfo qname
    callee: str  # FunctionInfo qname
    path: str  # caller file display path (finding anchor)
    line: int
    col: int
    kind: str  # call | partial | coord | loop | worker | any
    awaited: bool = False


@dataclass
class _FieldType:
    """Evidence about what ``self.<attr>`` can hold on one class."""

    types: set[str] = field(default_factory=set)  # project class names
    nonproject: bool = False  # stdlib objects / literals / None
    unknown: bool = False  # something we cannot classify


class _ModuleTable:
    """Per-module names: defs, classes, imports, lazy re-exports."""

    def __init__(self) -> None:
        self.defs: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        # alias -> dotted module ("import a.b" binds "a" -> "a")
        self.module_aliases: dict[str, str] = {}
        # local name -> (source module, original name)
        self.imports: dict[str, tuple[str, str]] = {}
        # PEP 562: exported name -> submodule (from a literal _LAZY dict)
        self.lazy: dict[str, str] = {}


class ProgramAnalysis:
    """The symbol table + call graph, built once per :class:`Project`.

    Obtain via :meth:`Project.analysis` so every interprocedural rule
    shares one build.
    """

    def __init__(self, project: Project):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.modules: dict[str, _ModuleTable] = {}
        self.edges: list[CallEdge] = []
        self.edges_by_caller: dict[str, list[CallEdge]] = {}
        self._related_cache: dict[str, frozenset[str]] = {}
        # (class name, attr) -> _FieldType evidence from assignments
        self.field_types: dict[tuple[str, str], _FieldType] = {}
        self.build_seconds = 0.0
        started = time.perf_counter()
        for file in project:
            if file.tree is not None:
                self._index_file(file)
        self._link_class_methods()
        self._infer_field_types()
        for file in project:
            if file.tree is not None:
                self._extract_calls(file)
        self.build_seconds = time.perf_counter() - started

    # -- stats ----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "files": len(self.project.files),
            "functions": sum(
                1 for f in self.functions.values() if f.name != "<module>"
            ),
            "call_edges": len(self.edges),
            "build_seconds": round(self.build_seconds, 4),
        }

    # -- pass 1: symbols -------------------------------------------------

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qname] = info
        self.by_name.setdefault(info.name, []).append(info)

    def _index_file(self, file: SourceFile) -> None:
        module = module_name(file)
        table = self.modules.setdefault(module, _ModuleTable())
        mod_info = FunctionInfo(
            qname=f"{module}.<module>",
            name="<module>",
            module=module,
            cls=None,
            file=file,
            node=file.tree,
            is_async=False,
        )
        self._add_function(mod_info)
        self._index_scope(file, module, table, file.tree.body, cls=None, parent=None)

    def _index_scope(
        self,
        file: SourceFile,
        module: str,
        table: _ModuleTable,
        body: Iterable[ast.AST],
        cls: str | None,
        parent: str | None,
        prefix: str = "",
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{module}.{prefix}{node.name}"
                info = FunctionInfo(
                    qname=qname,
                    name=node.name,
                    module=module,
                    cls=cls,
                    file=file,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    decorators=_decorator_names(node),
                    parent=parent,
                )
                self._add_function(info)
                if cls is not None and parent is None:
                    table_cls = table.classes.get(cls)
                    if table_cls is not None:
                        table_cls.methods[node.name] = info
                elif cls is None and parent is None:
                    table.defs[node.name] = info
                self._index_scope(
                    file, module, table, node.body,
                    cls=cls, parent=qname, prefix=f"{prefix}{node.name}.",
                )
            elif isinstance(node, ast.ClassDef) and parent is None:
                info = ClassInfo(
                    name=node.name,
                    module=module,
                    file=file,
                    node=node,
                    bases=tuple(
                        n for n in (last_name(b) for b in node.bases) if n
                    ),
                )
                table.classes[node.name] = info
                self.classes.setdefault(node.name, []).append(info)
                self._index_scope(
                    file, module, table, node.body,
                    cls=node.name, parent=None, prefix=f"{prefix}{node.name}.",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table.module_aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_from(module, file, node)
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table.imports[alias.asname or alias.name] = (source, alias.name)
            elif isinstance(node, ast.Assign) and cls is None and parent is None:
                self._maybe_lazy_table(table, node)
            elif isinstance(node, (ast.If, ast.Try)):
                # Imports guarded by TYPE_CHECKING / try-except fallbacks.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        self._index_scope(
                            file, module, table, [sub], cls, parent, prefix
                        )

    @staticmethod
    def _maybe_lazy_table(table: _ModuleTable, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "_LAZY"):
            return
        if not isinstance(node.value, ast.Dict):
            return
        for key, value in zip(node.value.keys, node.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                table.lazy[key.value] = value.value

    @staticmethod
    def _resolve_from(
        module: str, file: SourceFile, node: ast.ImportFrom
    ) -> str | None:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        if not file.rel.endswith("__init__.py"):
            parts = parts[:-1]  # the package containing this module
        parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    def _link_class_methods(self) -> None:
        # Methods were registered per-module; nothing further to do here
        # beyond priming the related-class cache lazily.
        self._related_cache.clear()

    # -- pass 1.5: field types -------------------------------------------

    def _infer_field_types(self) -> None:
        for infos in self.classes.values():
            for cls in infos:
                table = self.modules[cls.module]
                for stmt in cls.node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        self._record_annotation(cls, stmt.target.id, stmt.annotation)
                for method in cls.methods.values():
                    annotations = {
                        a.arg: a.annotation
                        for a in (
                            *method.node.args.posonlyargs,
                            *method.node.args.args,
                            *method.node.args.kwonlyargs,
                        )
                        if a.annotation is not None
                    }
                    for node in walk_scope(method.node.body):
                        targets: list[tuple[ast.AST, ast.AST | None]] = []
                        if isinstance(node, ast.Assign):
                            targets = [(t, node.value) for t in node.targets]
                        elif isinstance(node, ast.AnnAssign):
                            targets = [(node.target, node.value)]
                        for target, value in targets:
                            if not (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                continue
                            if isinstance(node, ast.AnnAssign):
                                self._record_annotation(
                                    cls, target.attr, node.annotation
                                )
                            if value is not None:
                                self._record_value(
                                    cls, table, target.attr, value, annotations
                                )

    def _field(self, cls: ClassInfo, attr: str) -> _FieldType:
        return self.field_types.setdefault((cls.name, attr), _FieldType())

    def _annotation_project(self, annotation: ast.AST) -> set[str]:
        """Project class names mentioned in a type annotation."""
        names = {
            n.id for n in ast.walk(annotation) if isinstance(n, ast.Name)
        } | {n.attr for n in ast.walk(annotation) if isinstance(n, ast.Attribute)}
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            names |= set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation.value))
        return names & self.classes.keys()

    def _apply_annotation(self, ft: _FieldType, annotation: ast.AST) -> None:
        project = self._annotation_project(annotation)
        if project:
            ft.types |= project
        else:
            ft.nonproject = True

    def _record_annotation(
        self, cls: ClassInfo, attr: str, annotation: ast.AST
    ) -> None:
        self._apply_annotation(self._field(cls, attr), annotation)

    def _record_value(
        self,
        cls: ClassInfo,
        table: _ModuleTable,
        attr: str,
        value: ast.AST,
        annotations: dict[str, ast.AST],
    ) -> None:
        self._classify_value(self._field(cls, attr), table, value, annotations)

    def _classify_value(
        self,
        ft: _FieldType,
        table: _ModuleTable,
        value: ast.AST,
        annotations: dict[str, ast.AST],
    ) -> None:
        for part in self._value_parts(value):
            if isinstance(part, ast.Call):
                name = last_name(part.func)
                root = (dotted(part.func) or "").split(".")[0]
                if name in self.classes:
                    ft.types.add(name)
                elif root in ("self", "cls") or root == "":
                    ft.unknown = True  # a method call: return type unknown
                elif root in table.module_aliases:
                    target = table.module_aliases[root].split(".")[0]
                    if any(m.split(".")[0] == target for m in self.modules):
                        ft.unknown = True
                    else:
                        ft.nonproject = True  # asyncio.Queue(), mp.Pool(), ...
                elif name in table.imports:
                    source, _orig = table.imports[name]
                    if any(
                        m == source or m.startswith(source + ".")
                        for m in self.modules
                    ):
                        ft.unknown = True
                    else:
                        ft.nonproject = True  # deque(), OrderedDict(), ...
                elif name in table.defs:
                    ft.unknown = True
                else:
                    ft.nonproject = True  # builtins: dict(), set(), open()...
            elif isinstance(
                part,
                (ast.Constant, ast.Dict, ast.List, ast.Set, ast.Tuple,
                 ast.DictComp, ast.ListComp, ast.SetComp, ast.JoinedStr,
                 ast.BinOp, ast.UnaryOp, ast.Compare, ast.Lambda),
            ):
                ft.nonproject = True
            elif isinstance(part, ast.Name):
                annotation = annotations.get(part.id)
                if annotation is not None:
                    self._apply_annotation(ft, annotation)
                else:
                    ft.unknown = True
            else:
                ft.unknown = True

    @staticmethod
    def _value_parts(value: ast.AST) -> list[ast.AST]:
        """Unwrap await/ternary/or-chains to the values a field may hold."""
        if isinstance(value, ast.Await):
            return ProgramAnalysis._value_parts(value.value)
        if isinstance(value, ast.IfExp):
            return [
                *ProgramAnalysis._value_parts(value.body),
                *ProgramAnalysis._value_parts(value.orelse),
            ]
        if isinstance(value, ast.BoolOp):
            out: list[ast.AST] = []
            for v in value.values:
                out.extend(ProgramAnalysis._value_parts(v))
            return out
        return [value]

    # -- name resolution -------------------------------------------------

    def resolve_export(
        self, module: str, name: str, _depth: int = 0
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve ``name`` as defined in / re-exported by ``module``.

        Chases ``from .sub import name`` chains and PEP 562 ``_LAZY``
        tables through package ``__init__`` files (bounded depth).
        """
        if _depth > 8:
            return None
        table = self.modules.get(module)
        if table is None:
            return None
        if name in table.defs:
            return table.defs[name]
        if name in table.classes:
            return table.classes[name]
        if name in table.imports:
            source, orig = table.imports[name]
            return self.resolve_export(source, orig, _depth + 1)
        if name in table.lazy:
            return self.resolve_export(f"{module}.{table.lazy[name]}", name, _depth + 1)
        return None

    def related_classes(self, name: str) -> frozenset[str]:
        """Bare names of classes related to ``name`` by declared bases
        (transitively, in both directions)."""
        cached = self._related_cache.get(name)
        if cached is not None:
            return cached
        related = {name}
        changed = True
        while changed:
            changed = False
            for cls_name, infos in self.classes.items():
                for info in infos:
                    if cls_name in related and any(
                        b not in related and b in self.classes for b in info.bases
                    ):
                        related.update(b for b in info.bases if b in self.classes)
                        changed = True
                    if cls_name not in related and any(b in related for b in info.bases):
                        related.add(cls_name)
                        changed = True
        result = frozenset(related)
        self._related_cache[name] = result
        return result

    def methods_named(
        self, attr: str, within: frozenset[str] | None = None
    ) -> list[FunctionInfo]:
        candidates = [
            f
            for f in self.by_name.get(attr, [])
            if f.cls is not None and f.parent is None
        ]
        if within is not None:
            scoped = [f for f in candidates if f.cls in within]
            if scoped:
                return scoped
        return candidates

    # -- pass 2: call edges ----------------------------------------------

    def _extract_calls(self, file: SourceFile) -> None:
        module = module_name(file)
        awaited = _awaited_call_ids(file.tree)
        for info in self.functions.values():
            if info.file is not file:
                continue
            body = (
                info.node.body
                if isinstance(
                    info.node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
                )
                else []
            )
            for node in walk_scope(body):
                if isinstance(node, ast.Call):
                    self._edge_from_call(info, module, node, awaited)
                elif isinstance(node, ast.Lambda):
                    # Calls inside a lambda run whenever someone invokes
                    # it — attribute them with kind "any".
                    for sub in ast.walk(node.body):
                        if isinstance(sub, ast.Call):
                            self._edge_from_call(
                                info, module, sub, awaited, force_kind="any"
                            )

    def _add_edge(
        self,
        caller: FunctionInfo,
        callee: FunctionInfo | None,
        node: ast.AST,
        kind: str,
        awaited: bool = False,
    ) -> None:
        if callee is None:
            return
        edge = CallEdge(
            caller=caller.qname,
            callee=callee.qname,
            path=caller.file.display,
            line=getattr(node, "lineno", caller.line),
            col=getattr(node, "col_offset", 0),
            kind=kind,
            awaited=awaited,
        )
        self.edges.append(edge)
        self.edges_by_caller.setdefault(edge.caller, []).append(edge)

    def _reference_candidates(
        self, caller: FunctionInfo, module: str, node: ast.AST
    ) -> list[FunctionInfo]:
        if isinstance(node, ast.Name):
            resolved = self._resolve_direct(caller, module, node.id)
            return [resolved] if isinstance(resolved, FunctionInfo) else []
        if isinstance(node, ast.Attribute):
            return self._attr_candidates(caller, module, node)
        return []

    def _base_classes(self, name: str) -> frozenset[str]:
        """Transitive *project* base classes of ``name`` (upward only)."""
        out: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for info in self.classes.get(current, []):
                for base in info.bases:
                    if base in self.classes and base not in out:
                        out.add(base)
                        frontier.append(base)
        return frozenset(out)

    def _scoped_methods(self, attr: str, within: frozenset[str]) -> list[FunctionInfo]:
        return [
            f
            for f in self.by_name.get(attr, [])
            if f.cls in within and f.parent is None
        ]

    def _field_classes(
        self, classes: frozenset[str], attr: str
    ) -> frozenset[str] | str | None:
        """What ``<one of classes>.attr`` holds: a set of project class
        names, ``"nonproject"``, or None (no usable evidence)."""
        types: set[str] = set()
        nonproject = False
        seen = False
        for cls in classes:
            ft = self.field_types.get((cls, attr))
            if ft is None:
                continue
            seen = True
            if ft.unknown:
                return None
            types |= ft.types
            nonproject |= ft.nonproject
        if types:
            related: set[str] = set()
            for t in types:
                related |= self.related_classes(t)
            return frozenset(related)
        if seen and nonproject:
            return "nonproject"
        return None

    def _name_classes(
        self, caller: FunctionInfo, module: str, name: str
    ) -> frozenset[str] | str | None:
        """What the local/parameter ``name`` can hold in ``caller``:
        related project class names, ``"nonproject"``, or None."""
        node = caller.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg != name:
                continue
            if arg.annotation is None:
                return None
            project = self._annotation_project(arg.annotation)
            if not project:
                return "nonproject"
            related: set[str] = set()
            for t in project:
                related |= self.related_classes(t)
            return frozenset(related)
        table = self.modules.get(module)
        if table is None:
            return None
        ft = _FieldType()
        seen = False
        for sub in walk_scope(node.body):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                if not any(
                    isinstance(t, ast.Name) and t.id == name for t in targets
                ):
                    continue
                seen = True
                if isinstance(sub, ast.AnnAssign) and sub.annotation is not None:
                    self._apply_annotation(ft, sub.annotation)
                if sub.value is not None:
                    self._classify_value(ft, table, sub.value, {})
        if not seen or ft.unknown:
            return None
        if ft.types:
            related = set()
            for t in ft.types:
                related |= self.related_classes(t)
            return frozenset(related)
        if ft.nonproject:
            return "nonproject"
        return None

    def _attr_candidates(
        self, caller: FunctionInfo, module: str, node: ast.Attribute
    ) -> list[FunctionInfo]:
        """Candidate targets for an attribute reference/call."""
        # super().m() dispatches only to project base classes
        if (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "super"
            and caller.cls is not None
        ):
            return self._scoped_methods(node.attr, self._base_classes(caller.cls))
        recv = dotted(node.value)
        if recv is not None:
            parts = recv.split(".")
            if parts[0] in ("self", "cls") and caller.cls is not None:
                classes = self.related_classes(caller.cls)
                for hop in parts[1:]:
                    resolved = self._field_classes(classes, hop)
                    if resolved is None:
                        return self.methods_named(node.attr)
                    if resolved == "nonproject":
                        return []
                    classes = resolved
                return self._scoped_methods(node.attr, classes)
            mod = self._receiver_module(module, recv)
            if mod is not None:
                resolved = self.resolve_export(mod, node.attr)
                if isinstance(resolved, FunctionInfo):
                    return [resolved]
                if isinstance(resolved, ClassInfo):
                    init = resolved.methods.get("__init__")
                    return [init] if init is not None else []
                return []
            classes = self._name_classes(caller, module, parts[0])
            if classes is not None:
                if classes == "nonproject":
                    return []
                for hop in parts[1:]:
                    resolved = self._field_classes(classes, hop)
                    if resolved is None:
                        return self.methods_named(node.attr)
                    if resolved == "nonproject":
                        return []
                    classes = resolved
                return self._scoped_methods(node.attr, classes)
        return self.methods_named(node.attr)

    def _resolve_direct(
        self, caller: FunctionInfo, module: str, name: str
    ) -> FunctionInfo | ClassInfo | None:
        # nested defs of the enclosing function chain first
        scope: FunctionInfo | None = caller
        while scope is not None:
            nested = self.functions.get(f"{scope.qname}.{name}")
            if nested is not None:
                return nested
            scope = self.functions.get(scope.parent) if scope.parent else None
        # then the class body (rare: calling an unbound sibling), then module
        if caller.cls is not None:
            table = self.modules.get(module)
            if table is not None:
                cls = table.classes.get(caller.cls)
                if cls is not None and name in cls.methods:
                    return cls.methods[name]
        return self.resolve_export(module, name)

    def _receiver_module(self, module: str, recv: str) -> str | None:
        table = self.modules.get(module)
        if table is None:
            return None
        parts = recv.split(".")
        if parts[0] in table.module_aliases:
            return ".".join([table.module_aliases[parts[0]], *parts[1:]])
        if len(parts) == 1 and parts[0] in table.imports:
            source, orig = table.imports[parts[0]]
            candidate = f"{source}.{orig}"
            if candidate in self.modules:
                return candidate
        return None

    def _edge_from_call(
        self,
        caller: FunctionInfo,
        module: str,
        node: ast.Call,
        awaited_ids: set[int],
        force_kind: str | None = None,
    ) -> None:
        func = node.func
        name = last_name(func)
        awaited = id(node) in awaited_ids
        base_kind = force_kind or "call"

        # -- dispatch special cases: references handed to shims ---------
        if name == "_run_coord" or name == "run_in_executor":
            ref_args = node.args if name == "_run_coord" else node.args[1:]
            for arg in ref_args[:1]:
                for target in self._reference_candidates(caller, module, arg):
                    self._add_edge(caller, target, node, "coord")
        elif name in _LOOP_DISPATCH:
            for arg in node.args:
                for target in self._reference_candidates(caller, module, arg):
                    self._add_edge(caller, target, node, "loop")
        elif name == "partial":
            if node.args:
                for target in self._reference_candidates(
                    caller, module, node.args[0]
                ):
                    self._add_edge(caller, target, node, base_kind
                                   if base_kind != "call" else "partial")
        elif name in ("submit", "apply_async"):
            for kw in node.keywords:
                if kw.arg in _PARENT_KWARGS:
                    for target in self._reference_candidates(
                        caller, module, kw.value
                    ):
                        self._add_edge(caller, target, node, "any")
            kind = "worker" if name == "apply_async" else "any"
            for arg in node.args[:1]:
                for target in self._reference_candidates(caller, module, arg):
                    self._add_edge(caller, target, node, kind)
        elif name == "Pool" or name == "ThreadPoolExecutor":
            for kw in node.keywords:
                if kw.arg == "initializer":
                    for target in self._reference_candidates(
                        caller, module, kw.value
                    ):
                        self._add_edge(caller, target, node, "worker")

        # -- the call itself ---------------------------------------------
        if isinstance(func, ast.Name):
            resolved = self._resolve_direct(caller, module, func.id)
            if isinstance(resolved, FunctionInfo):
                self._add_edge(caller, resolved, node, base_kind, awaited)
            elif isinstance(resolved, ClassInfo):
                init = resolved.methods.get("__init__")
                if init is not None:
                    self._add_edge(caller, init, node, base_kind, awaited)
        elif isinstance(func, ast.Attribute):
            candidates = self._attr_candidates(caller, module, func)
            if awaited and any(c.is_async for c in candidates):
                candidates = [c for c in candidates if c.is_async]
            for target in candidates:
                self._add_edge(caller, target, node, base_kind, awaited)
