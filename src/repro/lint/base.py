"""The :class:`Rule` base class.

Lives in its own leaf module so the interprocedural rule modules
(:mod:`~repro.lint.domains`, :mod:`~repro.lint.locks`,
:mod:`~repro.lint.taint`) can subclass it without importing the
registry in :mod:`~repro.lint.rules` — which imports *them*.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .model import Finding, Project, SourceFile

__all__ = ["Rule"]


class Rule:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = ""

    @property
    def description(self) -> str:
        doc = (self.__doc__ or "").strip()
        first_paragraph = doc.split("\n\n")[0]
        return " ".join(first_paragraph.split())

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=file.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
