"""Data model for :mod:`repro.lint` — files, pragmas, findings.

The linter operates on a :class:`Project`: every ``*.py`` file reachable
from the paths given on the command line, parsed once with the stdlib
:mod:`ast` and annotated with its suppression pragmas.  Rules receive
the whole project (some, like the coordinator call-graph walk, need
cross-file context) and yield :class:`Finding` objects; the runner in
:mod:`repro.lint` then resolves pragma suppressions.

Pragma syntax (comments only — extracted with :mod:`tokenize`, so the
same text inside a string literal is inert)::

    x = risky()  # repro-lint: disable=RULE[,RULE2] -- why this is safe

A pragma suppresses matching findings on its own line, or — when the
comment stands alone on a line — on the line directly below.  The
justification after ``--`` is mandatory: a pragma without one is itself
reported by the unsuppressable built-in ``pragma`` rule, as is a pragma
naming a rule the registry does not know.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Pragma",
    "Project",
    "SourceFile",
    "load_project",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s-]*?)"
    r"\s*(?:--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str  # "" when the author omitted the `-- why` part
    standalone: bool  # comment-only line: applies to the line below too


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    justification: str | None = None  # set when suppressed by a pragma

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out


@dataclass
class SourceFile:
    """A parsed source file plus its pragmas."""

    path: Path  # as discovered on disk
    display: str  # path rendered in reports (relative when possible)
    rel: str  # package-relative posix path ("repro/serve/x.py") or display
    text: str
    tree: ast.Module | None
    pragmas: dict[int, Pragma] = field(default_factory=dict)
    error: SyntaxError | None = None

    def pragma_for(self, line: int) -> Pragma | None:
        """The pragma governing ``line``: same line, or standalone above."""
        direct = self.pragmas.get(line)
        if direct is not None:
            return direct
        above = self.pragmas.get(line - 1)
        if above is not None and above.standalone:
            return above
        return None


class Project:
    """The set of files a lint run inspects."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        self._analysis = None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def analysis(self):
        """The shared :class:`~repro.lint.callgraph.ProgramAnalysis`,
        built on first use and reused by every interprocedural rule."""
        if self._analysis is None:
            from .callgraph import ProgramAnalysis

            self._analysis = ProgramAnalysis(self)
        return self._analysis

    def files_under(self, *prefixes: str) -> list[SourceFile]:
        """Files whose package-relative path starts with any prefix."""
        return [
            f for f in self.files if any(f.rel.startswith(p) for p in prefixes)
        ]


def _package_rel(path: Path) -> str:
    """Path relative to the innermost ``repro`` directory, as posix.

    ``/any/where/src/repro/serve/http.py`` → ``repro/serve/http.py``, so
    path-scoped rules work identically on the real tree and on fixture
    trees materialised under a tmp dir.  Files outside a ``repro``
    directory keep their given path.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.as_posix()


def _extract_pragmas(text: str) -> dict[int, Pragma]:
    pragmas: dict[int, Pragma] = {}
    code_lines: set[int] = set()
    comments: list[tuple[int, int, str]] = []  # (line, col, text)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                for ln in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(ln)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas  # the parse rule reports the file anyway
    for line, _col, comment in comments:
        m = _PRAGMA_RE.search(comment)
        if m is None:
            continue
        rules = tuple(
            r.strip() for r in m.group("rules").split(",") if r.strip()
        )
        pragmas[line] = Pragma(
            line=line,
            rules=rules,
            justification=(m.group("why") or "").strip(),
            standalone=line not in code_lines,
        )
    return pragmas


def _load_file(path: Path, display: str) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree: ast.Module | None = None
    error: SyntaxError | None = None
    try:
        tree = ast.parse(text, filename=display)
    except SyntaxError as exc:
        error = exc
    return SourceFile(
        path=path,
        display=display,
        rel=_package_rel(path),
        text=text,
        tree=tree,
        pragmas=_extract_pragmas(text),
        error=error,
    )


def _iter_py_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    yield from sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def load_project(paths: Iterable[str | Path]) -> Project:
    """Discover, read, and parse every ``*.py`` under ``paths``."""
    files: list[SourceFile] = []
    seen: set[Path] = set()
    cwd = Path.cwd()
    for raw in paths:
        root = Path(raw)
        for path in _iter_py_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                display = resolved.relative_to(cwd).as_posix()
            except ValueError:
                display = path.as_posix()
            files.append(_load_file(path, display))
    return Project(files)
