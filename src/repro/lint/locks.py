"""Lock-order analysis: the ``lock-order`` rule.

Collects every lock the project creates (``self.x = threading.Lock()``
/ ``RLock()`` — identity is ``(enclosing class, attribute)``; plus
module-level ``x = threading.Lock()`` — identity ``(module, name)``),
every acquisition site (``with lock:`` bodies and ``lock.acquire()``
calls), and the *held-across* relation: while holding lock A, a
function acquires lock B either directly or through any synchronous
call chain (closure over the shared call graph).  Edges ``A → B`` form
the global lock-order graph; a cycle means two threads can acquire the
participating locks in opposite orders — a potential deadlock.  A
self-cycle (re-acquiring the same lock while holding it) is reported
only for plain ``Lock``s: an ``RLock`` is re-entrant by design, which
is exactly why the engine cache uses one.

Lock identity resolution: ``with self._lock:`` inside class ``C``
binds to the lock created in ``C`` (or a base/subclass of ``C``); an
acquisition on a receiver the analysis cannot type (``other._lock``)
gets a per-attribute-name bucket so unrelated objects' locks are not
merged into false cycles.

Soundness envelope: acquisitions through aliases (``l = self._lock;
with l:``), locks stored in containers, and ``acquire``/``release``
pairs split across functions are not tracked; the closure follows only
synchronous ``call``/``partial`` edges, so a lock held across a
*dispatch* (``_run_coord``, executor futures that the caller then
blocks on) is invisible.  Conversely the conservative call graph may
close over chains no real execution takes — a reported cycle is a
"review this ordering", not a proof of deadlock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Rule
from .callgraph import FunctionInfo, ProgramAnalysis, dotted, walk_scope
from .model import Finding, Project

__all__ = ["LockOrder"]

_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "lock",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
}

#: A lock identity: ("cls", class name, attr) / ("mod", module, name) /
#: ("attr", "?", attr) for untyped receivers.
LockId = tuple[str, str, str]


def _lock_kind(node: ast.AST) -> str | None:
    """'lock' / 'rlock' when ``node`` constructs a threading lock."""
    if not isinstance(node, ast.Call):
        return None
    d = dotted(node.func)
    if d is None:
        return None
    parts = d.split(".")
    if parts[0] in ("threading", "multiprocessing", "mp") or len(parts) == 1:
        return _LOCK_CTORS.get(parts[-1])
    return None


class _LockTable:
    """Every lock creation in the project, keyed by identity."""

    def __init__(self, analysis: ProgramAnalysis):
        self.kinds: dict[LockId, str] = {}
        self.sites: dict[LockId, tuple[str, int]] = {}
        for info in analysis.functions.values():
            if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in walk_scope(info.node.body):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                kind = _lock_kind(node.value)
                if kind is None:
                    continue
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and info.cls is not None
                ):
                    lock_id: LockId = ("cls", info.cls, target.attr)
                elif isinstance(target, ast.Name):
                    lock_id = ("mod", info.module, target.id)
                else:
                    continue
                self.kinds[lock_id] = kind
                self.sites[lock_id] = (info.file.display, node.lineno)
        # module-level locks assigned outside any function
        for qname, info in analysis.functions.items():
            if info.name != "<module>":
                continue
            for node in walk_scope(getattr(info.node, "body", [])):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                kind = _lock_kind(node.value)
                if kind is None or not isinstance(node.targets[0], ast.Name):
                    continue
                lock_id = ("mod", info.module, node.targets[0].id)
                self.kinds[lock_id] = kind
                self.sites[lock_id] = (info.file.display, node.lineno)

    def resolve(
        self, analysis: ProgramAnalysis, info: FunctionInfo, expr: ast.AST
    ) -> LockId | None:
        """The identity of the lock object ``expr`` refers to, or None
        when ``expr`` does not look like a lock at all."""
        d = dotted(expr)
        if d is None:
            return None
        parts = d.split(".")
        attr = parts[-1]
        if parts[0] == "self" and len(parts) == 2 and info.cls is not None:
            for cls in analysis.related_classes(info.cls):
                lock_id: LockId = ("cls", cls, attr)
                if lock_id in self.kinds:
                    return lock_id
            # self.<attr> with no recorded creation: treat as a
            # class-private lock of unknown kind.
            if "lock" in attr.lower():
                return ("cls", info.cls, attr)
            return None
        if len(parts) == 1:
            lock_id = ("mod", info.module, attr)
            if lock_id in self.kinds:
                return lock_id
            if "lock" in attr.lower():
                return ("mod", info.module, attr)
            return None
        # foreign receiver: bucket by attribute name only when it is
        # recognisably a lock, never merged with typed identities.
        if "lock" in attr.lower():
            return ("attr", "?", attr)
        return None


class LockOrder(Rule):
    """No cycles in the global lock-order graph (potential deadlocks).

    Invariant (PRs 3–9 accumulated five ``threading.Lock``/``RLock``
    objects across cache, pool, metrics and tracer; the transport
    refactor will add more): if any execution holds lock A while
    acquiring lock B, no other execution may hold B while acquiring A.
    This rule closes per-function ``with lock:`` / ``.acquire()``
    nestings over the call graph and reports every cycle in the
    resulting lock-order graph, including same-lock re-entry on a
    non-re-entrant plain ``Lock``.  See the module docstring for the
    soundness envelope.
    """

    name = "lock-order"

    def run(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        table = _LockTable(analysis)

        # Per-function: locks acquired anywhere in the body, and
        # (held lock -> acquired-or-called) facts from with-nesting.
        acquires: dict[str, set[LockId]] = {}
        held_edges: list[tuple[LockId, LockId, str, int, str]] = []
        held_calls: list[tuple[LockId, str, str, int, str]] = []
        for info in analysis.functions.values():
            if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            direct: set[LockId] = set()
            self._scan(
                analysis, table, info, info.node.body, (), direct,
                held_edges, held_calls,
            )
            if direct:
                acquires[info.qname] = direct

        # Transitive acquired-set per function over call/partial edges.
        closure: dict[str, set[LockId]] = {
            q: set(locks) for q, locks in acquires.items()
        }
        changed = True
        while changed:
            changed = False
            for edge in analysis.edges:
                if edge.kind not in ("call", "partial"):
                    continue
                callee_locks = closure.get(edge.callee)
                if not callee_locks:
                    continue
                mine = closure.setdefault(edge.caller, set())
                before = len(mine)
                mine |= callee_locks
                if len(mine) != before:
                    changed = True

        # Build the lock-order graph: direct nesting edges plus
        # held-lock -> everything a called function may acquire.
        graph: dict[LockId, dict[LockId, tuple[str, int, str]]] = {}
        for held, acquired, path, line, where in held_edges:
            graph.setdefault(held, {}).setdefault(acquired, (path, line, where))
        for held, callee, path, line, where in held_calls:
            for acquired in closure.get(callee, ()):
                graph.setdefault(held, {}).setdefault(acquired, (path, line, where))

        yield from self._report_cycles(table, graph)

    # -- body scan -------------------------------------------------------

    def _scan(
        self,
        analysis: ProgramAnalysis,
        table: _LockTable,
        info: FunctionInfo,
        body,
        held: tuple[LockId, ...],
        direct: set[LockId],
        held_edges: list,
        held_calls: list,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    lock_id = table.resolve(analysis, info, item.context_expr)
                    if lock_id is not None:
                        direct.add(lock_id)
                        for h in inner:
                            held_edges.append(
                                (h, lock_id, info.file.display, stmt.lineno,
                                 info.name)
                            )
                        inner = inner + (lock_id,)
                self._scan(
                    analysis, table, info, stmt.body, inner, direct,
                    held_edges, held_calls,
                )
                continue
            # Expressions of this statement (not its compound bodies).
            self._scan_exprs(
                analysis, table, info, stmt, held, direct,
                held_edges, held_calls,
            )
            # Compound bodies keep the same held set.
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if sub:
                    self._scan(
                        analysis, table, info, sub, held, direct,
                        held_edges, held_calls,
                    )
            for handler in getattr(stmt, "handlers", []):
                self._scan(
                    analysis, table, info, handler.body, held, direct,
                    held_edges, held_calls,
                )

    def _scan_exprs(
        self,
        analysis: ProgramAnalysis,
        table: _LockTable,
        info: FunctionInfo,
        stmt: ast.AST,
        held: tuple[LockId, ...],
        direct: set[LockId],
        held_edges: list,
        held_calls: list,
    ) -> None:
        todo = [
            c for c in ast.iter_child_nodes(stmt) if not isinstance(c, ast.stmt)
        ]
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            todo.extend(
                c for c in ast.iter_child_nodes(node)
                if not isinstance(c, ast.stmt)
            )
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
                lock_id = table.resolve(analysis, info, node.func.value)
                if lock_id is not None:
                    direct.add(lock_id)
                    for h in held:
                        held_edges.append(
                            (h, lock_id, info.file.display, node.lineno,
                             info.name)
                        )
            if held:
                for edge in analysis.edges_by_caller.get(info.qname, []):
                    if edge.kind in ("call", "partial") and edge.line == node.lineno:
                        for h in held:
                            held_calls.append(
                                (h, edge.callee, info.file.display,
                                 node.lineno, info.name)
                            )

    # -- cycle detection -------------------------------------------------

    @staticmethod
    def _label(lock_id: LockId) -> str:
        scope, owner, attr = lock_id
        if scope == "cls":
            return f"{owner}.{attr}"
        if scope == "mod":
            return f"{owner}:{attr}"
        return f"<any>.{attr}"

    def _report_cycles(
        self,
        table: _LockTable,
        graph: dict[LockId, dict[LockId, tuple[str, int, str]]],
    ) -> Iterator[Finding]:
        # Self-cycles: re-acquiring a held lock (deadlock on plain Lock).
        reported: set[tuple[LockId, ...]] = set()
        for lock_id, targets in sorted(graph.items()):
            site = targets.get(lock_id)
            if site is None:
                continue
            if table.kinds.get(lock_id, "lock") == "rlock":
                continue
            path, line, where = site
            yield Finding(
                rule=self.name, path=path, line=line, col=0,
                message=(
                    f"'{self._label(lock_id)}' is re-acquired while already "
                    f"held (in '{where}'); a plain threading.Lock "
                    "self-deadlocks here — use an RLock or restructure"
                ),
            )
            reported.add((lock_id,))
        # Multi-lock cycles via DFS from every node.
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = tuple(sorted(cycle))
            if key in reported or len(cycle) < 2:
                continue
            reported.add(key)
            path, line, where = graph[cycle[0]][cycle[1 % len(cycle)]]
            order = " -> ".join(self._label(l) for l in [*cycle, cycle[0]])
            yield Finding(
                rule=self.name, path=path, line=line, col=0,
                message=(
                    f"lock-order cycle {order} (edge recorded in '{where}'); "
                    "two threads taking these locks in opposite orders can "
                    "deadlock — impose a global acquisition order"
                ),
            )

    @staticmethod
    def _find_cycle(
        graph: dict[LockId, dict[LockId, tuple]], start: LockId
    ) -> list[LockId] | None:
        stack: list[tuple[LockId, list[LockId]]] = [(start, [start])]
        seen: set[LockId] = set()
        while stack:
            node, trail = stack.pop()
            for nxt in graph.get(node, {}):
                if nxt == start and len(trail) > 1:
                    return trail
                if nxt in seen or nxt == node:
                    continue
                seen.add(nxt)
                stack.append((nxt, trail + [nxt]))
        return None
