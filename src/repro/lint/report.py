"""Human, JSON, and SARIF reporters for lint results.

JSON schema history:

``schema_version: 1``
    ``ok`` / ``rules`` / ``findings`` / ``suppressed`` / ``summary``.
``schema_version: 2`` (PR 10)
    Adds ``baselined`` (findings matched by a ``--baseline`` file and
    therefore not counted against ``ok``), ``summary.baselined``, and
    ``stats`` — file/function/call-edge counts from the shared program
    analysis plus per-rule wall-clock timings (``rule_seconds``).

SARIF output (:meth:`LintReport.to_sarif`) follows the SARIF 2.1.0
schema: one run, one driver tool listing every executed rule, one
result per active finding (suppressed and baselined findings are
emitted with ``suppressions`` so viewers show them struck through).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .model import Finding
from .rules import ALL_RULES

__all__ = ["LintReport", "sorted_findings"]

SCHEMA_VERSION = 2

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # active
    suppressed: list[Finding] = field(default_factory=list)  # pragma'd
    baselined: list[Finding] = field(default_factory=list)  # in --baseline
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self, verbose: bool = False, show_stats: bool = False) -> str:
        """The human-readable report (one ``path:line:col`` per line)."""
        lines = [f.format() for f in sorted_findings(self.findings)]
        if verbose:
            lines.extend(
                f"{f.format()}  [suppressed: {f.justification}]"
                for f in sorted_findings(self.suppressed)
            )
            lines.extend(
                f"{f.format()}  [baselined]"
                for f in sorted_findings(self.baselined)
            )
        noun = "finding" if len(self.findings) == 1 else "findings"
        baseline_part = (
            f", {len(self.baselined)} baselined" if self.baselined else ""
        )
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({len(self.suppressed)} suppressed{baseline_part}) in "
            f"{self.files_checked} files, "
            f"{len(self.rules_run)} rules"
        )
        if show_stats and self.stats:
            timings = self.stats.get("rule_seconds", {})
            slowest = sorted(timings.items(), key=lambda kv: -kv[1])[:3]
            parts = [
                f"files={self.stats.get('files', self.files_checked)}",
                f"functions={self.stats.get('functions', 0)}",
                f"call_edges={self.stats.get('call_edges', 0)}",
                f"analysis={self.stats.get('build_seconds', 0.0):.3f}s",
            ]
            parts.extend(f"{name}={secs:.3f}s" for name, secs in slowest)
            lines.append("stats: " + " ".join(parts))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "rules": [
                {"name": name, "description": ALL_RULES[name].description}
                for name in self.rules_run
            ],
            "findings": [f.to_dict() for f in sorted_findings(self.findings)],
            "suppressed": [
                f.to_dict() for f in sorted_findings(self.suppressed)
            ],
            "baselined": [
                f.to_dict() for f in sorted_findings(self.baselined)
            ],
            "summary": {
                "files_checked": self.files_checked,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "stats": self.stats,
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the JSON report, creating parent directories."""
        return _write(path, self.to_dict())

    # -- SARIF -----------------------------------------------------------

    def to_sarif(self) -> dict:
        """The report as a SARIF 2.1.0 log (one run)."""

        def result(finding: Finding, suppression: str | None) -> dict:
            out = {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
            if suppression is not None:
                entry: dict = {"kind": "inSource" if suppression == "pragma"
                               else "external"}
                if finding.justification:
                    entry["justification"] = finding.justification
                out["suppressions"] = [entry]
            return out

        results = [result(f, None) for f in sorted_findings(self.findings)]
        results += [
            result(f, "pragma") for f in sorted_findings(self.suppressed)
        ]
        results += [
            result(f, "baseline") for f in sorted_findings(self.baselined)
        ]
        return {
            "$schema": _SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": (
                                "https://github.com/local/repro"
                            ),
                            "rules": [
                                {
                                    "id": name,
                                    "shortDescription": {
                                        "text": ALL_RULES[name].description
                                    },
                                }
                                for name in self.rules_run
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }

    def write_sarif(self, path: str | Path) -> Path:
        """Write the SARIF 2.1.0 log, creating parent directories."""
        return _write(path, self.to_sarif())


def _write(path: str | Path, payload: dict) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return out


def sorted_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
