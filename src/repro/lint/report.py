"""Human and JSON reporters for lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .model import Finding
from .rules import ALL_RULES

__all__ = ["LintReport"]

SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # active
    suppressed: list[Finding] = field(default_factory=list)  # pragma'd
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self, verbose: bool = False) -> str:
        """The human-readable report (one ``path:line:col`` per line)."""
        lines = [f.format() for f in sorted_findings(self.findings)]
        if verbose:
            lines.extend(
                f"{f.format()}  [suppressed: {f.justification}]"
                for f in sorted_findings(self.suppressed)
            )
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({len(self.suppressed)} suppressed) in "
            f"{self.files_checked} files, "
            f"{len(self.rules_run)} rules"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "rules": [
                {"name": name, "description": ALL_RULES[name].description}
                for name in self.rules_run
            ],
            "findings": [f.to_dict() for f in sorted_findings(self.findings)],
            "suppressed": [
                f.to_dict() for f in sorted_findings(self.suppressed)
            ],
            "summary": {
                "files_checked": self.files_checked,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
            },
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the JSON report, creating parent directories."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return out


def sorted_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
