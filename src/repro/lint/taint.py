"""Pickle-boundary and shared-memory taint analysis.

Two rules share one conservative, field-sensitive taint engine:

``pickle-taint``
    Values reaching ``ShardTask`` fields or pool/fleet
    ``submit``/``apply_async``/``run_query`` arguments are traced
    through assignments, ``with``/``for`` bindings, attribute fields
    (``self.x = ...`` anywhere in the class), function returns, and
    calls, back to *poisoned sources*: lambdas and locally-defined
    functions, ``threading``/``multiprocessing`` primitives, sockets,
    ``asyncio`` primitives, and ``SharedStoreLease`` objects
    (``SharedStoreLease(...)`` / ``lease_shared()`` /
    ``export_shared()``).  The per-file ``pickle-boundary`` rule only
    sees a lambda written literally at the call site; this rule follows
    the value.  ``.handle`` access *sanitizes*: a
    ``SharedStoreHandle`` is picklable by design and legitimately
    crosses the on-box worker boundary.  The ``callback=`` /
    ``error_callback=`` keywords stay parent-side and are exempt.

``no-shm-across-transport``
    The first transport-boundary rule, landed ahead of the multi-host
    refactor (ROADMAP): shared-memory-derived values (leases, exported
    segments, ``SharedStoreHandle``/``.handle``, bus handles) must
    never flow into a *transport* send (``send``/``sendall``/
    ``send_task``/``dispatch``/``publish`` on a receiver whose name
    mentions transport/remote/wire).  POSIX shared memory only exists
    on one box; shipping a handle over a wire protocol hands the
    remote worker a name it can never attach.  Local pool dispatch
    (``ShardTask.store_handle``) is *not* a sink — handles legitimately
    cross the same-box process boundary.  Vacuously clean today;
    fixture-tested so the rule is live the day a transport lands.

Soundness envelope: the engine unions taint over all assignments to a
name (flow- and path-insensitive), tracks containers as a whole (one
tainted element taints the tuple), does not track aliasing through
mutation (``d["k"] = lease; use(d)`` is missed), and resolves calls
through the conservative call graph — so it can both miss taint routed
through dynamic dispatch and report taint along call-graph edges no
real execution takes.  Interprocedural depth is bounded by a fixpoint
over return-taint and sink-parameter summaries, so helper indirection
(``def _send(task): pool.submit(task)``) is followed at any depth.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Rule
from .callgraph import (
    FunctionInfo,
    ProgramAnalysis,
    dotted,
    last_name,
    walk_scope,
)
from .model import Finding, Project

__all__ = ["NoShmAcrossTransport", "PickleTaint"]

_THREADING_PRIMS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
     "Barrier"}
)
_ASYNCIO_PRIMS = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "Event", "Lock", "Condition",
     "Semaphore", "BoundedSemaphore", "Future"}
)
_SHM_CALLS = frozenset(
    {"SharedStoreLease", "lease_shared", "export_shared", "SharedMemory",
     "SharedStoreHandle", "attach_shared_store", "handle"}
)
_PARENT_KWARGS = frozenset({"callback", "error_callback"})

#: A taint is either a human-readable source description (str) or a
#: parameter marker ("param", index) used for interprocedural summaries.
Taint = object


class _Config:
    """What counts as a source, a sink, and a sanitizer for one rule."""

    lambda_desc: str | None = None
    sanitize_attrs: frozenset[str] = frozenset()

    def call_source(self, call: ast.Call) -> str | None:
        raise NotImplementedError

    def sink_exprs(
        self, info: FunctionInfo, call: ast.Call
    ) -> tuple[str, list[ast.AST]] | None:
        """``(sink description, expressions pickled/sent)`` or None."""
        raise NotImplementedError


class _PickleConfig(_Config):
    lambda_desc = "a lambda closure"
    sanitize_attrs = frozenset({"handle"})

    def call_source(self, call: ast.Call) -> str | None:
        d = dotted(call.func)
        name = last_name(call.func)
        if d is not None:
            parts = d.split(".")
            if (
                parts[0] in ("threading", "multiprocessing", "mp")
                and parts[-1] in _THREADING_PRIMS
            ):
                return f"a {parts[0]} primitive ({d}())"
            if parts[0] == "asyncio" and parts[-1] in _ASYNCIO_PRIMS:
                return f"an asyncio primitive ({d}())"
            if d == "socket.socket":
                return "a socket"
        if name == "SharedStoreLease" or name in ("lease_shared", "export_shared"):
            return f"a shared-memory lease ({name}(...))"
        return None

    def sink_exprs(self, info, call):
        func = call.func
        if last_name(func) == "ShardTask":
            exprs = list(call.args) + [kw.value for kw in call.keywords]
            return "a ShardTask field", exprs
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in ("submit", "apply_async", "run_query"):
            return None
        receiver = (dotted(func.value) or "").lower()
        pooled = "pool" in receiver or "fleet" in receiver
        if not pooled and receiver in ("self", "cls") and info.cls is not None:
            cls = info.cls.lower()
            pooled = "pool" in cls or "fleet" in cls
        if not pooled:
            return None
        exprs = list(call.args) + [
            kw.value for kw in call.keywords if kw.arg not in _PARENT_KWARGS
        ]
        return f"a {func.attr}() worker-pool argument", exprs


class _ShmConfig(_Config):
    _SINK_VERBS = frozenset({"send", "sendall", "send_task", "dispatch", "publish"})
    _SINK_TOKENS = ("transport", "remote", "wire")

    def call_source(self, call: ast.Call) -> str | None:
        name = last_name(call.func)
        if name in _SHM_CALLS:
            return f"a shared-memory object ({name}(...))"
        return None

    def sink_exprs(self, info, call):
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._SINK_VERBS:
            return None
        receiver = (dotted(func.value) or "").lower()
        if not any(token in receiver for token in self._SINK_TOKENS):
            return None
        exprs = list(call.args) + [kw.value for kw in call.keywords]
        return f"a transport .{func.attr}() payload", exprs


# --------------------------------------------------------------------------
# the engine


class _TaintEngine:
    _ROUNDS = 4  # interprocedural fixpoint bound

    def __init__(self, analysis: ProgramAnalysis, config: _Config):
        self.analysis = analysis
        self.config = config
        self.return_taint: dict[str, set] = {}
        self.field_taint: dict[tuple[str, str], set[str]] = {}
        self.sink_params: dict[str, set[int]] = {}
        self.findings: list[tuple[str, int, int, str]] = []
        funcs = [
            f
            for f in analysis.functions.values()
            if isinstance(f.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for _ in range(self._ROUNDS):
            before = (
                sum(len(v) for v in self.return_taint.values()),
                sum(len(v) for v in self.field_taint.values()),
                sum(len(v) for v in self.sink_params.values()),
            )
            for info in funcs:
                self._process(info, record=False)
            after = (
                sum(len(v) for v in self.return_taint.values()),
                sum(len(v) for v in self.field_taint.values()),
                sum(len(v) for v in self.sink_params.values()),
            )
            if after == before:
                break
        for info in funcs:
            self._process(info, record=True)

    # -- per-function ----------------------------------------------------

    def _params(self, info: FunctionInfo) -> list[str]:
        args = info.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return names

    def _callees(self, info: FunctionInfo, call: ast.Call) -> list[FunctionInfo]:
        line = getattr(call, "lineno", None)
        out = []
        for edge in self.analysis.edges_by_caller.get(info.qname, []):
            if edge.kind == "call" and edge.line == line:
                out.append(self.analysis.functions[edge.callee])
        return out

    def _process(self, info: FunctionInfo, record: bool) -> None:
        env: dict[str, set] = {}
        for i, name in enumerate(self._params(info)):
            env[name] = {("param", i)}
        local_defs = {
            n.name
            for n in walk_scope(info.node.body)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        # Bindings, to a local fixpoint (out-of-order def/use tolerant).
        for _ in range(3):
            changed = False
            for node in walk_scope(info.node.body):
                changed |= self._bind(info, env, local_defs, node)
            if not changed:
                break
        # Sinks, returns, field stores, interprocedural propagation.
        for node in walk_scope(info.node.body):
            if isinstance(node, ast.Return) and node.value is not None:
                taints = self._eval(info, env, local_defs, node.value)
                if taints:
                    self.return_taint.setdefault(info.qname, set()).update(taints)
            elif isinstance(node, ast.Assign):
                self._field_store(info, env, local_defs, node)
            elif isinstance(node, ast.Call):
                self._check_call(info, env, local_defs, node, record)

    def _bind(self, info, env, local_defs, node) -> bool:
        def assign(target: ast.AST, taints: set) -> bool:
            if isinstance(target, ast.Name):
                dest = env.setdefault(target.id, set())
                before = len(dest)
                dest.update(taints)
                return len(dest) != before
            if isinstance(target, (ast.Tuple, ast.List)):
                return any(assign(t, taints) for t in list(target.elts))
            return False

        changed = False
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                return False
            taints = self._eval(info, env, local_defs, value)
            if not taints:
                return False
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                changed |= assign(target, taints)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is None:
                    continue
                taints = self._eval(info, env, local_defs, item.context_expr)
                if taints:
                    changed |= assign(item.optional_vars, taints)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            taints = self._eval(info, env, local_defs, node.iter)
            if taints:
                changed |= assign(node.target, taints)
        return changed

    def _field_store(self, info, env, local_defs, node: ast.Assign) -> None:
        if info.cls is None:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                strings = {
                    t
                    for t in self._eval(info, env, local_defs, node.value)
                    if isinstance(t, str)
                }
                if strings:
                    self.field_taint.setdefault(
                        (info.cls, target.attr), set()
                    ).update(strings)

    # -- expression taint ------------------------------------------------

    def _eval(self, info, env, local_defs, expr: ast.AST, depth: int = 0) -> set:
        if depth > 12:
            return set()
        if isinstance(expr, ast.Name):
            taints = set(env.get(expr.id, ()))
            if expr.id in local_defs and self.config.lambda_desc is not None:
                taints.add(f"locally-defined '{expr.id}'")
            return taints
        if isinstance(expr, ast.Lambda):
            return (
                {self.config.lambda_desc}
                if self.config.lambda_desc is not None
                else set()
            )
        if isinstance(expr, ast.Await):
            return self._eval(info, env, local_defs, expr.value, depth + 1)
        if isinstance(expr, ast.Attribute):
            if expr.attr in self.config.sanitize_attrs:
                return set()
            taints: set = set()
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if info.cls is not None:
                    for cls in self.analysis.related_classes(info.cls):
                        taints |= self.field_taint.get((cls, expr.attr), set())
            taints |= self._eval(info, env, local_defs, expr.value, depth + 1)
            return taints
        if isinstance(expr, ast.Call):
            source = self.config.call_source(expr)
            if source is not None:
                return {source}
            taints = set()
            # a call on a sanitizing attribute (lease.handle()) is clean
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in self.config.sanitize_attrs
            ):
                return set()
            for callee in self._callees(info, expr):
                for t in self.return_taint.get(callee.qname, ()):
                    if isinstance(t, str):
                        taints.add(t)
                    else:  # ("param", i): substitute the call-site arg
                        arg = self._arg_at(callee, expr, t[1])
                        if arg is not None:
                            taints |= self._eval(
                                info, env, local_defs, arg, depth + 1
                            )
            return taints
        if isinstance(
            expr,
            (ast.Tuple, ast.List, ast.Set, ast.Starred, ast.BoolOp, ast.BinOp,
             ast.IfExp, ast.NamedExpr),
        ):
            taints = set()
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, (ast.expr,)):
                    taints |= self._eval(info, env, local_defs, child, depth + 1)
            return taints
        if isinstance(expr, ast.Dict):
            taints = set()
            for value in expr.values:
                taints |= self._eval(info, env, local_defs, value, depth + 1)
            return taints
        return set()

    @staticmethod
    def _arg_at(callee: FunctionInfo, call: ast.Call, index: int) -> ast.AST | None:
        offset = 1 if callee.cls is not None else 0
        positional = index - offset
        if 0 <= positional < len(call.args):
            return call.args[positional]
        args = callee.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if 0 <= index < len(names):
            wanted = names[index]
            for kw in call.keywords:
                if kw.arg == wanted:
                    return kw.value
        return None

    # -- sinks -----------------------------------------------------------

    def _check_call(self, info, env, local_defs, call: ast.Call, record: bool):
        sink = self.config.sink_exprs(info, call)
        if sink is not None:
            desc, exprs = sink
            params = set(self._params(info))
            for expr in exprs:
                taints = self._eval(info, env, local_defs, expr)
                for t in taints:
                    if isinstance(t, str):
                        if record:
                            self.findings.append(
                                (
                                    info.file.display,
                                    getattr(expr, "lineno", call.lineno),
                                    getattr(expr, "col_offset", 0),
                                    f"{t} flows into {desc} in "
                                    f"'{info.name}' — it cannot cross this "
                                    "boundary",
                                )
                            )
                    else:
                        self.sink_params.setdefault(info.qname, set()).add(t[1])
            del params
        # propagation into callees whose parameters reach a sink
        for callee in self._callees(info, call):
            for index in self.sink_params.get(callee.qname, ()):
                arg = self._arg_at(callee, call, index)
                if arg is None:
                    continue
                taints = self._eval(info, env, local_defs, arg)
                for t in taints:
                    if isinstance(t, str):
                        if record:
                            self.findings.append(
                                (
                                    info.file.display,
                                    getattr(arg, "lineno", call.lineno),
                                    getattr(arg, "col_offset", 0),
                                    f"{t} flows into a boundary sink inside "
                                    f"'{callee.name}' ({callee.where()}) via "
                                    f"this call in '{info.name}'",
                                )
                            )
                    else:
                        self.sink_params.setdefault(info.qname, set()).add(t[1])


# --------------------------------------------------------------------------
# the rules


class _TaintRule(Rule):
    config_cls: type[_Config] = _Config

    def run(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        engine = _TaintEngine(analysis, self.config_cls())
        seen: set[tuple] = set()
        for path, line, col, message in engine.findings:
            key = (path, line, message)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                rule=self.name, path=path, line=line, col=col, message=message
            )


class PickleTaint(_TaintRule):
    """Unpicklable values must not *flow* into the worker boundary —
    ``ShardTask`` fields and pool/fleet submit arguments are traced
    back through assignments, fields, returns, and calls to closure /
    lock / socket / asyncio / shared-memory-lease sources.

    Invariant (PRs 1–2, made interprocedural in PR 10): everything a
    shard task carries is pickled into a worker process.  The per-file
    ``pickle-boundary`` rule catches a lambda written at the call
    site; this rule catches the same lambda bound to a variable three
    assignments earlier, a lease stored on ``self`` and submitted from
    another method, or a helper whose parameter ends up in a
    ``ShardTask`` field.  ``.handle`` sanitizes (a
    ``SharedStoreHandle`` is picklable by design);
    ``callback=``/``error_callback=`` stay parent-side and are exempt.
    See the module docstring for the soundness envelope.
    """

    name = "pickle-taint"
    config_cls = _PickleConfig


class NoShmAcrossTransport(_TaintRule):
    """Shared-memory handles and leases must never flow into a
    transport send (``send``/``dispatch``/``publish`` on
    transport/remote/wire receivers).

    Invariant (ROADMAP, multi-host scale-out — landed ahead of the
    refactor it gates): POSIX shared memory is same-box only.  When
    ``ShardTask`` dispatch grows a transport interface, store access
    must be re-established remotely (mmap-file shipping / object-store
    fetch), never by shipping a ``/dev/shm`` name.  Local pool
    dispatch is exempt: handles legitimately cross the same-box
    process boundary.  See the module docstring for the soundness
    envelope.
    """

    name = "no-shm-across-transport"
    config_cls = _ShmConfig
