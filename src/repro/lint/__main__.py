"""CLI entry point: ``python -m repro.lint [PATHS ...]``.

Exit status: 0 when the tree is clean (no unsuppressed, unbaselined
findings), 1 when findings remain, 2 on usage errors — including a
``--select`` naming an unknown rule or selecting nothing at all.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pickle
import sys
from pathlib import Path
from typing import Sequence

from . import ALL_RULES, UNSUPPRESSABLE, load_project, run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if it exists, "
        "else the current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the machine-readable report to PATH "
        "(parent directories are created)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in a previous --json report "
        "(matched by rule, path, and message; not by line)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only the named rules (parse/pragma built-ins always run)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics (files, functions, call edges, "
        "slowest rules)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="cache the parsed project + call graph under DIR, keyed by a "
        "hash of the source tree (used by CI to skip re-parsing)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    return parser


def _list_rules() -> str:
    width = max(len(name) for name in ALL_RULES)
    lines = []
    for name, rule in ALL_RULES.items():
        tag = "  [built-in, unsuppressable]" if name in UNSUPPRESSABLE else ""
        lines.append(f"{name.ljust(width)}  {rule.description}{tag}")
    return "\n".join(lines)


def _load_baseline(path: str) -> list[tuple[str, str, str]]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    triples: list[tuple[str, str, str]] = []
    for section in ("findings", "baselined"):
        for entry in data.get(section, []):
            triples.append((entry["rule"], entry["path"], entry["message"]))
    return triples


def _tree_key(paths: list[str]) -> str:
    """Hash of every source file's path + contents under ``paths``."""
    digest = hashlib.sha256()
    for raw in sorted(paths):
        root = Path(raw)
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
        for p in files:
            digest.update(p.as_posix().encode())
            try:
                digest.update(p.read_bytes())
            except OSError:
                pass
    return digest.hexdigest()[:32]


def _cached_project(cache_dir: str, paths: list[str]):
    """Load the (project, analysis) pickle for this tree, or build and
    store it.  A stale or unreadable cache entry is simply rebuilt."""
    key = _tree_key(paths)
    entry = Path(cache_dir) / f"lint-cache-{key}.pickle"
    if entry.exists():
        try:
            project = pickle.loads(entry.read_bytes())
            print(f"cache: hit {entry.name}", file=sys.stderr)
            return project
        except Exception:
            pass  # version skew / truncation: fall through and rebuild
    project = load_project(paths)
    project.analysis()  # build the call graph so the cache includes it
    entry.parent.mkdir(parents=True, exist_ok=True)
    try:
        entry.write_bytes(pickle.dumps(project))
    except Exception as exc:
        print(f"cache: not written ({exc})", file=sys.stderr)
    return project


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select is not None
        else None
    )
    if select is not None and not select:
        print(
            "error: --select named no rules (see --list-rules)",
            file=sys.stderr,
        )
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: unreadable baseline: {exc}", file=sys.stderr)
            return 2
    project = _cached_project(args.cache, paths) if args.cache else None
    try:
        report = run_lint(paths, select=select, baseline=baseline,
                          project=project)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report.render(verbose=args.verbose, show_stats=args.stats))
    if args.json:
        out = report.write_json(args.json)
        print(f"json report: {out}")
    if args.sarif:
        out = report.write_sarif(args.sarif)
        print(f"sarif report: {out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
