"""CLI entry point: ``python -m repro.lint [PATHS ...]``.

Exit status: 0 when the tree is clean (no unsuppressed findings),
1 when findings remain, 2 on usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from . import ALL_RULES, UNSUPPRESSABLE, run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if it exists, "
        "else the current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the machine-readable report to PATH "
        "(parent directories are created)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only the named rules (parse/pragma built-ins always run)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    return parser


def _list_rules() -> str:
    width = max(len(name) for name in ALL_RULES)
    lines = []
    for name, rule in ALL_RULES.items():
        tag = "  [built-in, unsuppressable]" if name in UNSUPPRESSABLE else ""
        lines.append(f"{name.ljust(width)}  {rule.description}{tag}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    try:
        report = run_lint(paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report.render(verbose=args.verbose))
    if args.json:
        out = report.write_json(args.json)
        print(f"json report: {out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
