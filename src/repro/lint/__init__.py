"""repro.lint — AST-based invariant linter for this codebase (PR 8).

Seven PRs grew the reproduction into a multi-layer concurrent system
whose correctness rests on conventions a type checker cannot see: one
coordinator thread owns the engine internals, shared-memory leases and
bus checkouts must be released, shard tasks must pickle, the canonical
cache-key layout is frozen, and worker errors must never be silently
swallowed.  This package turns those conventions into machine-checked
rules (stdlib :mod:`ast` only — no new dependencies) so they fail at
review time instead of under production load.

PR 10 grew the per-file checks into a whole-program analysis: one
shared symbol table and conservative call graph
(:mod:`repro.lint.callgraph`), thread-domain inference over it
(:mod:`repro.lint.domains`), lock-order cycle detection
(:mod:`repro.lint.locks`), and pickle-boundary / shared-memory taint
tracking (:mod:`repro.lint.taint`) — so the coordinator-ownership and
blocking rules are now *transitive* across files, not just local.

Usage::

    python -m repro.lint [PATHS ...]      # default: src/
    python -m repro.lint --list-rules
    python -m repro.lint --json out.json --sarif out.sarif src/
    python -m repro.lint --baseline old_report.json --stats src/

Findings are suppressed per-line with a justified pragma::

    risky()  # repro-lint: disable=rule-name -- why this one is safe

The programmatic entry point is :func:`run_lint`; rules live in
:mod:`repro.lint.rules`, the data model in :mod:`repro.lint.model`,
reporters in :mod:`repro.lint.report`.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from .model import Finding, Pragma, Project, SourceFile, load_project
from .report import LintReport
from .rules import ALL_RULES, UNSUPPRESSABLE, Rule, iter_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Pragma",
    "Project",
    "Rule",
    "SourceFile",
    "UNSUPPRESSABLE",
    "iter_rules",
    "load_project",
    "run_lint",
]


def run_lint(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    baseline: Iterable[tuple[str, str, str]] | None = None,
    project: Project | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` and resolve suppressions.

    ``select`` restricts the run to the named rules (the ``parse`` and
    ``pragma`` built-ins always run; their findings are unsuppressable).
    Raises :class:`KeyError` for an unknown rule name.

    ``baseline`` is a collection of ``(rule, path, message)`` triples
    from a previous run (see ``--baseline``): matching findings are
    moved to :attr:`LintReport.baselined` and do not fail the run —
    line numbers are deliberately not matched, so unrelated edits that
    shift a known finding do not break the gate.

    ``project`` reuses an already-loaded :class:`Project` (and with it
    the memoized program analysis) instead of re-reading ``paths``.
    """
    import time

    if project is None:
        project = load_project(paths)
    if select is None:
        names = list(ALL_RULES)
    else:
        unknown = [n for n in select if n not in ALL_RULES]
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        names = list(dict.fromkeys(list(select) + sorted(UNSUPPRESSABLE)))

    remaining = Counter(baseline or ())
    by_display = {f.display: f for f in project}
    report = LintReport(files_checked=len(project.files), rules_run=names)
    timings: dict[str, float] = {}
    for name in names:
        started = time.perf_counter()
        for finding in ALL_RULES[name].run(project):
            file = by_display.get(finding.path)
            pragma = (
                file.pragma_for(finding.line) if file is not None else None
            )
            if (
                pragma is not None
                and finding.rule in pragma.rules
                and finding.rule not in UNSUPPRESSABLE
            ):
                report.suppressed.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        justification=pragma.justification,
                    )
                )
            elif remaining[(finding.rule, finding.path, finding.message)] > 0:
                remaining[(finding.rule, finding.path, finding.message)] -= 1
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        timings[name] = time.perf_counter() - started
    analysis = project._analysis  # populated only if a rule needed it
    report.stats = {
        **(analysis.stats() if analysis is not None else
           {"files": len(project.files)}),
        "rule_seconds": {
            name: round(secs, 4) for name, secs in timings.items()
        },
    }
    return report
