"""Thread-domain inference and the ``coordinator-only-transitive`` rule.

Every function is labelled with the set of *thread domains* it may run
on, propagated over the call graph from entry points:

``loop``
    ``async def`` bodies in ``repro/serve/`` (the asyncio event loop)
    and targets of loop-dispatch edges (``call_soon*`` and friends).
``coordinator``
    ``@coordinator_only`` definitions and references handed to
    ``Scheduler._run_coord`` / ``run_in_executor``.
``worker``
    The worker-process entry points (``initialize_worker`` /
    ``run_shard`` in ``repro/parallel/worker.py``) and references that
    cross the pool boundary (``apply_async`` targets, initializers).
``any``
    Targets whose execution context is unknown (``callback=`` hooks,
    lambda bodies).

Domains flow along ordinary ``call``/``partial`` edges (the callee runs
on the caller's thread); dispatch edges *replace* the domain at the
boundary.  ``@coordinator_only`` functions are a hard boundary: no
other domain is ever propagated into or through them — a loop-domain
chain *reaching* one is precisely the violation this rule reports.

The ``coordinator-only-transitive`` rule walks synchronous call chains
from every loop entry and fires when a chain

* reaches a ``@coordinator_only`` internal (the transitive form of the
  per-file ``coordinator-only`` rule, which only sees direct calls in
  ``repro/serve/`` — a serve coroutine calling an unmarked engine-layer
  wrapper that calls a marked internal is invisible to it), or
* reaches a *blocking primitive* (``time.sleep``, ``sqlite3.*``,
  ``subprocess.*``, ``open()``, non-awaited ``.acquire()``/``.wait()``/
  ``.run_query()``/``.sweep_serial()``) in a **sync helper** at depth
  ≥ 1 — the transitive form of ``no-blocking-in-async``, which only
  inspects the coroutine's own body.

Each finding prints the full call chain, one ``name (file:line)`` hop
at a time, and is anchored at the call site of the final hop so a
pragma on that line can suppress it.

Soundness envelope: inherits the call graph's blindness to dynamic
dispatch (``getattr``, function tables, monkey-patching) — a chain
routed through one produces no finding.  Conversely, conservative
attribute resolution may follow a same-named method on an unrelated
class; such chains are real code paths *somewhere* in the project but
possibly not reachable from the reported entry, and warrant a pragma
with the reasoning written down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .callgraph import (
    CallEdge,
    FunctionInfo,
    ProgramAnalysis,
    dotted,
    last_name,
    walk_scope,
)
from .base import Rule
from .model import Finding, Project

__all__ = ["CoordinatorOnlyTransitive", "infer_domains"]

_BLOCKING_ATTRS = frozenset({"acquire", "wait", "run_query", "sweep_serial"})

#: Edge kinds along which the caller's domain flows into the callee.
_FLOW_KINDS = frozenset({"call", "partial"})
#: Dispatch kinds that *set* the callee's domain.
_DISPATCH_DOMAIN = {"coord": "coordinator", "loop": "loop", "worker": "worker",
                    "any": "any"}


def _loop_entries(analysis: ProgramAnalysis) -> list[FunctionInfo]:
    entries = [
        f
        for f in analysis.functions.values()
        if f.is_async and f.file.rel.startswith("repro/serve/")
    ]
    seen = {f.qname for f in entries}
    for edge in analysis.edges:
        if edge.kind == "loop" and edge.callee not in seen:
            seen.add(edge.callee)
            entries.append(analysis.functions[edge.callee])
    return entries


def _worker_entries(analysis: ProgramAnalysis) -> list[FunctionInfo]:
    entries = [
        f
        for f in analysis.functions.values()
        if f.name in ("initialize_worker", "run_shard")
        and f.file.rel == "repro/parallel/worker.py"
    ]
    seen = {f.qname for f in entries}
    for edge in analysis.edges:
        if edge.kind == "worker" and edge.callee not in seen:
            seen.add(edge.callee)
            entries.append(analysis.functions[edge.callee])
    return entries


def infer_domains(analysis: ProgramAnalysis) -> dict[str, frozenset[str]]:
    """``qname -> {'loop','coordinator','worker','any'}`` labels."""
    domains: dict[str, set[str]] = {}

    def seed(qname: str, domain: str) -> None:
        domains.setdefault(qname, set()).add(domain)

    for info in analysis.functions.values():
        if info.is_marked:
            seed(info.qname, "coordinator")
    for info in _loop_entries(analysis):
        if not info.is_marked:
            seed(info.qname, "loop")
    for info in _worker_entries(analysis):
        if not info.is_marked:
            seed(info.qname, "worker")
    for edge in analysis.edges:
        domain = _DISPATCH_DOMAIN.get(edge.kind)
        if domain is not None and not analysis.functions[edge.callee].is_marked:
            seed(edge.callee, domain)

    # Propagate along synchronous call edges to a fixpoint.  Marked
    # functions are a boundary: they stay pure-coordinator.
    changed = True
    while changed:
        changed = False
        for edge in analysis.edges:
            if edge.kind not in _FLOW_KINDS:
                continue
            caller = domains.get(edge.caller)
            if not caller:
                continue
            callee_info = analysis.functions[edge.callee]
            if callee_info.is_marked:
                continue
            target = domains.setdefault(edge.callee, set())
            before = len(target)
            target |= caller
            if len(target) != before:
                changed = True
    return {q: frozenset(d) for q, d in domains.items()}


def _blocking_sites(info: FunctionInfo) -> list[tuple[ast.AST, str]]:
    """Blocking-primitive call sites in one function body (R1's set)."""
    node = info.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    awaited = {
        id(n.value)
        for n in ast.walk(node)
        if isinstance(n, ast.Await) and isinstance(n.value, ast.Call)
    }
    sites: list[tuple[ast.AST, str]] = []
    for sub in walk_scope(node.body):
        if not isinstance(sub, ast.Call):
            continue
        d = dotted(sub.func)
        if d == "time.sleep":
            sites.append((sub, "time.sleep()"))
        elif d is not None and d.startswith(("sqlite3.", "subprocess.")):
            sites.append((sub, f"{d}()"))
        elif isinstance(sub.func, ast.Name) and sub.func.id == "open":
            sites.append((sub, "open()"))
        elif (
            isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _BLOCKING_ATTRS
            and id(sub) not in awaited
        ):
            sites.append((sub, f".{sub.func.attr}()"))
    return sites


class CoordinatorOnlyTransitive(Rule):
    """Loop-domain code must not *transitively* reach a
    ``@coordinator_only`` internal or a blocking primitive through any
    synchronous call chain.

    Invariant (PR 4, made interprocedural in PR 10): the per-file
    ``coordinator-only`` and ``no-blocking-in-async`` rules police a
    coroutine's own body and direct calls inside ``repro/serve/``; this
    rule closes both over the project call graph, so a serve coroutine
    reaching a marked engine internal (or a ``time.sleep``) through an
    unmarked wrapper in *any* layer fires, with the full chain printed.
    Legal dispatch (references through ``_run_coord`` /
    ``run_in_executor`` / ``call_soon*`` / pool callbacks) does not
    propagate the loop domain.  See the module docstring for the
    soundness envelope.
    """

    name = "coordinator-only-transitive"

    def run(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        reported: set[tuple[str, int, str]] = set()
        for entry in _loop_entries(analysis):
            for finding, key in self._walk_entry(analysis, entry):
                if key not in reported:
                    reported.add(key)
                    yield finding

    def _walk_entry(
        self, analysis: ProgramAnalysis, entry: FunctionInfo
    ) -> Iterator[tuple[Finding, tuple[str, int, str]]]:
        # BFS with parent pointers so findings can print the chain.
        parents: dict[str, tuple[str, CallEdge]] = {}
        visited = {entry.qname}
        frontier = [entry.qname]
        while frontier:
            next_frontier: list[str] = []
            for qname in frontier:
                for edge in analysis.edges_by_caller.get(qname, []):
                    if edge.kind not in _FLOW_KINDS:
                        continue
                    callee = analysis.functions[edge.callee]
                    if callee.is_marked:
                        yield (
                            self._marked_finding(analysis, entry, parents, edge),
                            (edge.path, edge.line, edge.callee),
                        )
                        continue
                    if edge.callee in visited:
                        continue
                    visited.add(edge.callee)
                    parents[edge.callee] = (qname, edge)
                    if not callee.is_async:
                        for _site, what in _blocking_sites(callee):
                            yield (
                                self._blocking_finding(
                                    analysis, entry, parents, edge, callee, what
                                ),
                                (edge.path, edge.line, edge.callee),
                            )
                            break  # one finding per function per entry
                    next_frontier.append(edge.callee)
            frontier = next_frontier

    def _chain(
        self,
        analysis: ProgramAnalysis,
        entry: FunctionInfo,
        parents: dict[str, tuple[str, CallEdge]],
        final: CallEdge,
    ) -> str:
        hops: list[str] = []
        target = analysis.functions[final.callee]
        hops.append(f"{target.name} ({target.where()})")
        qname = final.caller
        edge: CallEdge | None = final
        while qname != entry.qname:
            info = analysis.functions[qname]
            hops.append(f"{info.name} ({edge.path}:{edge.line})" if edge else info.name)
            qname, edge = parents[qname]
        hops.append(f"{entry.name} ({edge.path}:{edge.line})" if edge else entry.name)
        return " -> ".join(reversed(hops))

    def _marked_finding(
        self,
        analysis: ProgramAnalysis,
        entry: FunctionInfo,
        parents: dict[str, tuple[str, CallEdge]],
        edge: CallEdge,
    ) -> Finding:
        target = analysis.functions[edge.callee]
        return Finding(
            rule=self.name,
            path=edge.path,
            line=edge.line,
            col=edge.col,
            message=(
                f"event-loop entry 'async def {entry.name}' reaches "
                f"@coordinator_only '{target.name}' via "
                f"{self._chain(analysis, entry, parents, edge)}; route the "
                "chain through Scheduler._run_coord or mark the intermediate "
                "callers @coordinator_only"
            ),
        )

    def _blocking_finding(
        self,
        analysis: ProgramAnalysis,
        entry: FunctionInfo,
        parents: dict[str, tuple[str, CallEdge]],
        edge: CallEdge,
        callee: FunctionInfo,
        what: str,
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=edge.path,
            line=edge.line,
            col=edge.col,
            message=(
                f"event-loop entry 'async def {entry.name}' reaches blocking "
                f"{what} inside '{callee.name}' via "
                f"{self._chain(analysis, entry, parents, edge)}; blocking "
                "work must run on the coordinator (_run_coord)"
            ),
        )
