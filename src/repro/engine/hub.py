"""EngineHub — many named networks served through one shared fleet.

A :class:`~repro.engine.MiningEngine` amortizes per-query setup for one
immutable network; the hub amortizes the *fleet* across many networks
and makes the networks mutable:

* **One pool, one bus pool.**  The worker fleet is spawned once,
  store-agnostic (``PersistentWorkerPool(None, ...)``); every pooled
  shard task carries its network's store handle and workers attach the
  export on demand (LRU-bounded per worker).  Threshold-bus segments
  come from one shared free list.
* **Per-network leases under a memory budget.**  Each registered
  network's shared-memory export lives in an LRU of
  :class:`~repro.data.store.SharedStoreLease`\\ s.  Attaching a lease
  that would push the total mapped bytes over ``lease_budget_bytes``
  evicts the least-recently-served network's lease (never the one being
  served).  Workers that already mapped an evicted segment keep their
  mapping (POSIX unlink semantics); the next query for that network
  simply pays a fresh export.
* **Append-edge deltas with incremental cache migration.**
  :meth:`append_edges` mutates the named network in place, rebuilds the
  store's edge-derived arrays, recomputes the fingerprint and retires
  the stale lease.  The old fingerprint's result-cache entries (memory
  *and* disk tier) are not simply purged: entries the delta provably
  did not invalidate are *migrated* to the new fingerprint with only
  the touched first-level branches re-mined
  (:mod:`repro.engine.delta`); the rest are purged and re-mine cold.
  Untouched networks keep their cache entries and leases.
* **A shared result cache with an optional disk tier.**  Keys embed the
  store fingerprint, so one cache safely serves every network.  With
  ``disk_cache=PATH`` the cache is a
  :class:`~repro.engine.cache.TieredResultCache` over a sqlite file —
  a restarted process answers previously mined queries without
  re-mining.

Semantics are inherited from the engine layer: each network is served
by a hub-managed :class:`MiningEngine` subclass whose only deviations
are *where* the pool, buses, lease and cache come from.  The hub is not
thread-safe; serve it from one coordinator (queries themselves still
fan out over the worker fleet).

Examples
--------
>>> from repro.datasets.toy import toy_dating_network
>>> from repro.engine import EngineHub
>>> with EngineHub(workers=2) as hub:
...     _ = hub.register("toy", toy_dating_network())
...     result = hub.mine("toy", k=5, min_support=2, min_nhp=0.5)
>>> len(result) <= 5
True
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Iterable, Mapping

from ..core.results import MiningResult
from ..data.network import SocialNetwork
from ..data.store import CompactStore, SharedStoreLease
from ..obs.metrics import REGISTRY
from ..parallel.miner import check_worker_count
from ..parallel.pool import BusPool, PersistentWorkerPool, default_start_method
from ..serve.markers import coordinator_only
from .cache import DiskResultCache, ResultCache, TieredResultCache
from .engine import MiningEngine
from .request import MineRequest

__all__ = ["EngineHub"]

_LEASE_EXPORTS = REGISTRY.counter(
    "repro_lease_exports_total",
    "Shared-memory store exports (leases opened).",
)
_LEASE_EVICTIONS = REGISTRY.counter(
    "repro_lease_evictions_total",
    "Resident store leases closed by the hub's memory budget.",
)


class _HubEngine(MiningEngine):
    """A MiningEngine whose fleet, buses, lease and cache are hub-owned.

    ``self._pool`` / ``self._buses`` are never populated, so the base
    ``close()`` cannot tear down shared resources; the lease lives in
    the hub's LRU instead of ``self._lease``.
    """

    def __init__(self, hub: "EngineHub", name: str, network: SocialNetwork,
                 store: CompactStore | None = None) -> None:
        self._hub = hub
        self.name = name
        super().__init__(
            network,
            workers=hub.workers,
            start_method=hub.start_method,
            threshold_refresh=hub.threshold_refresh,
            store=store,
            cache=hub.cache,
        )

    @coordinator_only
    def _ensure_lease(self) -> SharedStoreLease:
        return self._hub._touch_lease(self)

    @coordinator_only
    def _release_lease(self) -> None:
        self._hub._drop_lease(self.name)

    @coordinator_only
    def _ensure_pool(self) -> PersistentWorkerPool:
        # The shared fleet is store-agnostic, so serving a pooled query
        # requires this network's lease to be resident alongside it.
        self._hub._touch_lease(self)
        return self._hub._ensure_pool()

    @coordinator_only
    def _bus_pool(self) -> BusPool:
        return self._hub._bus_pool()

    def __repr__(self) -> str:
        return (
            f"_HubEngine({self.name!r}, fingerprint={self.fingerprint[:12]}, "
            f"queries={self.stats.queries})"
        )


class EngineHub:
    """Serve mining queries against many named networks from one fleet.

    Parameters
    ----------
    workers:
        Shared fleet size (``None`` uses ``os.cpu_count()``).  Every
        network's pooled queries run on this one fleet.
    start_method, threshold_refresh:
        As on :class:`~repro.engine.MiningEngine`, applied hub-wide.
    cache_size:
        Capacity of the shared in-memory result LRU (``0`` disables the
        memory tier).
    disk_cache:
        Optional path to a sqlite file persisting the result cache
        across processes (:class:`~repro.engine.cache.DiskResultCache`).
    disk_cache_max_bytes, disk_cache_ttl_seconds:
        Bound the disk tier: LRU-by-``last_used`` eviction over the
        byte cap, expiry of entries unused for the TTL window.  Both
        default to unbounded (the pre-eviction behavior).
    lease_budget_bytes:
        Soft cap on the summed size of resident shared-memory store
        exports; exceeding it evicts least-recently-served leases
        (``None`` = unbounded).  The lease of the network currently
        being served is never evicted, so a single oversized network
        still works — the budget then only keeps *other* networks out.
    """

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        threshold_refresh: int = 64,
        cache_size: int = 256,
        disk_cache: str | os.PathLike | None = None,
        disk_cache_max_bytes: int | None = None,
        disk_cache_ttl_seconds: float | None = None,
        lease_budget_bytes: int | None = None,
    ) -> None:
        if lease_budget_bytes is not None and lease_budget_bytes <= 0:
            raise ValueError("lease_budget_bytes must be positive (or None)")
        self.workers = check_worker_count(workers)
        self.start_method = start_method or default_start_method()
        self.threshold_refresh = threshold_refresh
        self.lease_budget_bytes = lease_budget_bytes
        memory = ResultCache(cache_size)
        self.cache = (
            TieredResultCache(
                memory,
                DiskResultCache(
                    disk_cache,
                    max_bytes=disk_cache_max_bytes,
                    ttl_seconds=disk_cache_ttl_seconds,
                ),
            )
            if disk_cache is not None
            else memory
        )
        self._engines: dict[str, _HubEngine] = {}
        self._leases: "OrderedDict[str, SharedStoreLease]" = OrderedDict()
        #: Pin refcounts per network (see :meth:`pin_lease`) — pinned
        #: leases are exempt from budget eviction.
        self._lease_pins: dict[str, int] = {}
        self._pool: PersistentWorkerPool | None = None
        self._buses: BusPool | None = None
        #: Fleet spawns performed (≤ 1 per hub lifetime).
        self.pool_spawns = 0
        #: Leases closed by the memory budget (not by deltas or close()).
        self.lease_evictions = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        network: SocialNetwork,
        store: CompactStore | None = None,
    ) -> _HubEngine:
        """Add a named network; returns its hub-managed engine.

        The compact store is built (or adopted) and fingerprinted now;
        the shared-memory export is deferred until the first pooled
        query touches it.
        """
        self._ensure_open()
        if name in self._engines:
            raise ValueError(f"network {name!r} is already registered")
        engine = _HubEngine(self, name, network, store=store)
        self._engines[name] = engine
        return engine

    def engine(self, name: str) -> _HubEngine:
        """The hub-managed engine serving ``name``."""
        try:
            return self._engines[name]
        except KeyError:
            raise KeyError(
                f"no network {name!r} registered "
                f"(have: {sorted(self._engines) or 'none'})"
            ) from None

    def network(self, name: str) -> SocialNetwork:
        return self.engine(name).network

    def names(self) -> list[str]:
        return sorted(self._engines)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    def __len__(self) -> int:
        return len(self._engines)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def mine(
        self, name: str, request: MineRequest | None = None, **kwargs
    ) -> MiningResult:
        """Answer one query against the named network."""
        self._ensure_open()
        return self.engine(name).mine(request, **kwargs)

    def sweep(
        self, name: str, requests: Iterable[MineRequest | Mapping]
    ) -> list[MiningResult]:
        """Answer a batch of queries against the named network."""
        self._ensure_open()
        return self.engine(name).sweep(requests)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @coordinator_only
    def append_edges(
        self, name: str, src, dst, edge_codes=None, on_duplicate: str = "allow"
    ) -> str:
        """Append edges to the named network; returns its new fingerprint.

        Rebuilds the store's edge-derived state, retires the stale lease
        and migrates-or-purges exactly the old fingerprint's cache
        entries, memory and disk tier (migrated entries are re-keyed to
        the new fingerprint with only the delta-touched branches
        re-mined; see :mod:`repro.engine.delta`, and the per-network
        ``migrated_entries`` / ``purged_entries`` counters in
        :meth:`stats` / :meth:`aggregate_stats`) — other networks'
        entries, hits and leases are untouched.  ``on_duplicate``
        passes through to :meth:`SocialNetwork.append_edges`.
        """
        self._ensure_open()
        return self.engine(name).append_edges(
            src, dst, edge_codes, on_duplicate=on_duplicate
        )

    # ------------------------------------------------------------------
    # Shared resources (called by _HubEngine)
    # ------------------------------------------------------------------
    @coordinator_only
    def _ensure_pool(self) -> PersistentWorkerPool:
        if self._pool is None:
            self._pool = PersistentWorkerPool(
                None,  # store-agnostic: tasks carry their store handles
                processes=self.workers,
                start_method=self.start_method,
                threshold_refresh=self.threshold_refresh,
            )
            self.pool_spawns += 1
        return self._pool

    @coordinator_only
    def _bus_pool(self) -> BusPool:
        if self._buses is None:
            self._buses = BusPool(num_slots=self.workers)
        return self._buses

    @coordinator_only
    def _touch_lease(self, engine: _HubEngine) -> SharedStoreLease:
        """The live lease for ``engine``, freshly exported if needed,
        promoted to most-recently-served, with the budget enforced."""
        lease = self._leases.get(engine.name)
        if lease is None or lease.closed:
            lease = engine.store.lease_shared()
            engine.stats.exports += 1
            _LEASE_EXPORTS.inc()
            self._leases[engine.name] = lease
        self._leases.move_to_end(engine.name)
        self._evict_over_budget(keep=engine.name)
        return lease

    @coordinator_only
    def _drop_lease(self, name: str) -> None:
        lease = self._leases.pop(name, None)
        if lease is not None:
            lease.close()

    @coordinator_only
    def _evict_over_budget(self, keep: str) -> None:
        if self.lease_budget_bytes is None:
            return
        while (
            len(self._leases) > 1
            and sum(lease.size for lease in self._leases.values())
            > self.lease_budget_bytes
        ):
            # Walk from least-recently-served, skipping the in-flight
            # network and any network pinned by concurrent serving (its
            # queued shard tasks still address the lease's segment, so
            # unlinking it would fail their attach).  All-pinned over
            # budget degrades to a soft cap rather than breaking a job.
            victim = next(
                (
                    name
                    for name in self._leases
                    if name != keep and self._lease_pins.get(name, 0) == 0
                ),
                None,
            )
            if victim is None:
                return
            self._leases.pop(victim).close()
            self.lease_evictions += 1
            _LEASE_EVICTIONS.inc()

    @coordinator_only
    def pin_lease(self, name: str) -> None:
        """Exempt ``name``'s lease from budget eviction (refcounted).

        The :mod:`repro.serve` scheduler pins a network while it has
        admitted jobs: their already-built shard tasks carry the current
        lease's segment name, and an eviction in between — triggered by
        an interleaved job *preparing* on another network — would unlink
        the segment out from under them.  Pins nest; they do not create
        leases and survive ``append_edges`` retiring one (the pin then
        guards whatever lease the network's next export produces).
        """
        self._lease_pins[name] = self._lease_pins.get(name, 0) + 1

    @coordinator_only
    def unpin_lease(self, name: str) -> None:
        """Drop one pin for ``name`` (the lease becomes evictable at 0)."""
        count = self._lease_pins.get(name, 0) - 1
        if count > 0:
            self._lease_pins[name] = count
        else:
            self._lease_pins.pop(name, None)

    def resident_networks(self) -> list[str]:
        """Networks whose store export is currently mapped, LRU order."""
        return [name for name, lease in self._leases.items() if not lease.closed]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, name: str):
        """The named network's :class:`EngineStats`."""
        return self.engine(name).stats

    @coordinator_only
    def aggregate_stats(self) -> dict[str, int]:
        """Hub-wide counters: summed engine stats plus fleet/lease state."""
        totals: dict[str, int] = {
            "networks": len(self._engines),
            "pool_spawns": self.pool_spawns,
            "lease_evictions": self.lease_evictions,
            "resident_leases": len(self.resident_networks()),
        }
        for engine in self._engines.values():
            for key, value in engine.stats.as_dict().items():
                if key != "pool_spawns":  # hub engines never spawn pools
                    totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("EngineHub is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, force: bool = False) -> None:
        """Release the fleet, buses, every lease and the cache (idempotent).

        Like :meth:`MiningEngine.close`, closing while pooled shard
        tasks are in flight on the shared fleet raises instead of
        deadlocking their gatherer; ``force=True`` (and the exception-
        unwinding ``with`` exit) tears down hard regardless.
        """
        if self._closed:
            return
        if not force and self._pool is not None and self._pool.inflight > 0:
            raise RuntimeError(
                f"EngineHub.close() with {self._pool.inflight} pooled shard "
                "task(s) still in flight — terminating the shared fleet now "
                "would block their gatherer forever and leak the query's "
                "threshold bus; drain or cancel the in-flight queries "
                "first, or call close(force=True) for a hard teardown"
            )
        self._closed = True
        for engine in self._engines.values():
            engine.close(force=True)  # per-engine state; shared resources below
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        if self._buses is not None:
            self._buses.close()
            self._buses = None
        for lease in self._leases.values():
            lease.close()
        self._leases.clear()
        self._lease_pins.clear()
        self.cache.close()

    def __enter__(self) -> "EngineHub":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(force=exc_type is not None)

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "pooled" if self._pool is not None else "idle"
        )
        return (
            f"EngineHub(networks={sorted(self._engines)}, "
            f"workers={self.workers}, {state}, "
            f"resident={self.resident_networks()})"
        )
