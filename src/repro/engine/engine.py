"""MiningEngine — a long-lived session serving many queries over one store.

Motivation: real use of GR mining — including the paper's own Fig. 4
experiment grids — runs *many* ``(k, minSupp, minNhp, rank_by)`` queries
against the *same* network.  The one-shot path
(:func:`repro.core.miner.mine_top_k` /
:class:`~repro.parallel.ParallelGRMiner`) pays the full setup on every
call: build the compact store, export it to shared memory, fork a worker
pool, re-gather the per-edge columns, re-partition the first level.  The
engine hoists all of that to construction time and amortizes it over the
query stream:

* the :class:`~repro.data.store.CompactStore` is built **once** and
  fingerprinted (the cache identity of the data);
* the shared-memory export happens **once**, under a guaranteed-unlink
  :class:`~repro.data.store.SharedStoreLease`;
* the worker fleet is spawned **once** (lazily, on the first pooled
  query) and re-armed per query via self-describing shard tasks;
* one serial miner skeleton handles planning and serial-mode queries,
  re-targeted per query with :meth:`GRMiner.rearm`;
* results are memoized in an LRU keyed by ``(store fingerprint,
  canonical request)``.

Semantics are inherited, not reimplemented: every query runs through the
exact same :func:`run_shard` / :func:`merge_shard_results` machinery as
:class:`~repro.parallel.ParallelGRMiner` (sharded mode) or the plain
:class:`~repro.core.miner.GRMiner` (serial mode), so the equivalence
harness's guarantees — Definition 5 exactness and worker-count
determinism — carry over unchanged.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.miner import GRMiner, MinerConfig
from ..core.results import MiningResult
from ..data.network import SocialNetwork
from ..data.store import CompactStore, SharedStoreHandle, SharedStoreLease, StoreDelta
from ..parallel.miner import (
    check_worker_count,
    execute_shards_inline,
    merge_shard_results,
    warn_if_overprovisioned,
)
from ..obs.metrics import REGISTRY
from ..parallel.planner import plan_shards
from ..parallel.pool import BusPool, PersistentWorkerPool, default_start_method
from ..parallel.worker import ShardTask
from ..serve.markers import coordinator_only
from .cache import ResultCache
from .delta import migrate_fingerprint
from .request import MineRequest

__all__ = ["EngineStats", "MiningEngine", "PreparedQuery"]

_WARM_STARTS = REGISTRY.counter(
    "repro_warm_starts_total",
    "Pooled queries whose bus was checked out pre-seeded with a warm-start floor.",
)
_LEASE_EXPORTS = REGISTRY.counter(
    "repro_lease_exports_total",
    "Shared-memory store exports (leases opened).",
)
_INVALIDATIONS = REGISTRY.counter(
    "repro_store_invalidations_total",
    "Store-delta invalidation events (fingerprint changes).",
)
_DELTA_ENTRIES = REGISTRY.counter(
    "repro_delta_entries_total",
    "Cache entries handled across a store delta, by outcome.",
    labels=("outcome",),
)
_DELTA_MIGRATED = _DELTA_ENTRIES.labels(outcome="migrated")
_DELTA_PURGED = _DELTA_ENTRIES.labels(outcome="purged")
_DELTA_FALLBACKS = _DELTA_ENTRIES.labels(outcome="fallback")


@dataclass
class EngineStats:
    """Lifecycle counters proving (and measuring) the amortization."""

    #: Shared-memory store exports performed (≤ 1 per engine *version*:
    #: an append-edge delta retires the old export and pays a new one).
    exports: int = 0
    #: Worker pools spawned (≤ 1 per engine; 0 for hub-managed engines,
    #: whose fleet is shared and counted on the hub).
    pool_spawns: int = 0
    #: Queries answered, including cache hits.
    queries: int = 0
    #: Queries served straight from the result cache.
    cache_hits: int = 0
    #: Queries actually mined.
    cache_misses: int = 0
    #: Store-delta invalidation events (append_edges → new fingerprint).
    invalidations: int = 0
    #: Cache entries dropped by those invalidations (they re-mine cold).
    purged_entries: int = 0
    #: Cache entries *migrated* across an invalidation instead: carried
    #: over to the new fingerprint with only touched branches re-mined
    #: (see :mod:`repro.engine.delta`).
    migrated_entries: int = 0
    #: Migration attempts that failed a safety check and degraded to a
    #: purge (a subset of ``purged_entries``).
    migration_fallbacks: int = 0
    #: Pooled queries whose threshold bus was checked out pre-seeded
    #: with a warm-start floor (see :meth:`MiningEngine.prepare`).
    warm_starts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "exports": self.exports,
            "pool_spawns": self.pool_spawns,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "invalidations": self.invalidations,
            "purged_entries": self.purged_entries,
            "migrated_entries": self.migrated_entries,
            "migration_fallbacks": self.migration_fallbacks,
            "warm_starts": self.warm_starts,
        }


@dataclass
class PreparedQuery:
    """The planned-but-not-yet-executed front half of one query.

    Splitting a query into *prepare* (cache lookup, branch planning,
    shard construction, bus checkout — all coordinator-side and quick)
    and *execute* (shard tasks on the fleet, gather, merge) is what lets
    the :mod:`repro.serve` scheduler own submission order: it prepares
    many jobs, then feeds their ``tasks`` to the shared fleet one slot
    at a time under its own priority / fairness policy, calling
    :meth:`MiningEngine.finish` once every shard settled.

    ``mode`` is one of:

    * ``"cached"`` — ``result`` already holds the answer;
    * ``"serial"`` — run on the coordinator via
      :meth:`MiningEngine.execute_prepared`;
    * ``"inline"`` — single-shard / ``workers=1``: same call, runs the
      shard machinery in-process;
    * ``"pooled"`` — submit ``tasks`` to the worker fleet, gather the
      :class:`~repro.parallel.worker.ShardResult`\\ s, then
      :meth:`MiningEngine.finish`.

    A prepared query holding a ``bus`` owns that checkout until
    :meth:`MiningEngine.release_bus` — which must only happen after
    every submitted shard settled (a straggler would otherwise publish
    stale floors into whichever query acquires the segment next).
    """

    request: MineRequest
    key: tuple
    mode: str
    result: MiningResult | None = None
    config: MinerConfig | None = None
    plan: object = None
    tasks: tuple[ShardTask, ...] = ()
    bus: object = None
    started: float = 0.0
    #: Warm-start floor the bus was seeded with (``None`` = cold).
    floor: float | None = None
    #: ``AsyncResult``s of submitted tasks (the blocking sweep path).
    pending: list = field(default_factory=list)
    #: Named sub-phase timings recorded by the engine, as
    #: ``{name: (start_perf_counter_s, end_perf_counter_s)}`` — the raw
    #: material the serve scheduler turns into trace spans.
    timings: dict = field(default_factory=dict)


class MiningEngine:
    """Serve a stream of top-k GR mining queries over one shared store.

    Parameters
    ----------
    network:
        The attributed network all queries run against.
    workers:
        Size of the (lazily spawned) worker fleet for sharded queries;
        ``None`` uses ``os.cpu_count()``.  Individual requests may ask
        for fewer workers; requests asking for more are clamped with a
        warning.
    start_method, threshold_refresh:
        As on :class:`~repro.parallel.ParallelGRMiner`.
    cache_size:
        LRU capacity of the result cache (``0`` disables caching).
    store:
        A prebuilt :class:`~repro.data.store.CompactStore`; defaults to
        building one from the network.
    cache:
        An externally owned result-cache object (any of the
        :mod:`repro.engine.cache` tiers).  When given, ``cache_size`` is
        ignored and ``close()`` leaves the cache alone — the mechanism
        by which an :class:`~repro.engine.hub.EngineHub` shares one
        (possibly disk-backed) cache across all of its networks.

    Examples
    --------
    >>> from repro.datasets.toy import toy_dating_network
    >>> from repro.engine import MineRequest, MiningEngine
    >>> with MiningEngine(toy_dating_network()) as engine:
    ...     results = engine.sweep([
    ...         MineRequest(k=5, min_support=2, min_nhp=0.5),
    ...         MineRequest(k=3, min_support=2, min_nhp=0.6),
    ...     ])
    >>> [len(r) <= 5 for r in results]
    [True, True]
    """

    def __init__(
        self,
        network: SocialNetwork,
        workers: int | None = None,
        start_method: str | None = None,
        threshold_refresh: int = 64,
        cache_size: int = 128,
        store: CompactStore | None = None,
        cache=None,
    ) -> None:
        self.network = network
        self.store = store if store is not None else CompactStore(network)
        self.fingerprint = self.store.fingerprint()
        self.workers = check_worker_count(workers)
        self.start_method = start_method or default_start_method()
        self.threshold_refresh = threshold_refresh
        self.stats = EngineStats()
        self._owns_cache = cache is None
        self._cache = cache if cache is not None else ResultCache(cache_size)
        self._skeleton: GRMiner | None = None
        self._lease: SharedStoreLease | None = None
        self._pool: PersistentWorkerPool | None = None
        self._buses: BusPool | None = None
        self._warned_clamp = False
        self._closed = False
        #: Non-None after a failed (and unrecovered) append_edges: the
        #: reason queries must fail loudly instead of serving stale data.
        self._poisoned: str | None = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def mine(self, request: MineRequest | None = None, **kwargs) -> MiningResult:
        """Answer one query; keyword form builds the request inline.

        ``engine.mine(k=10, min_nhp=0.5, workers=4)`` is shorthand for
        ``engine.mine(MineRequest.create(k=10, min_nhp=0.5, workers=4))``.
        """
        if request is None:
            request = MineRequest.create(**kwargs)
        elif kwargs:
            raise TypeError("pass either a MineRequest or keywords, not both")
        return self.sweep([request])[0]

    def sweep(self, requests: Iterable[MineRequest | Mapping]) -> list[MiningResult]:
        """Answer a batch of queries, interleaving their shards.

        All pooled queries' shard tasks are dispatched round-robin over
        the one shared fleet before any gather, so a sweep's wall time
        approaches the makespan of the combined task bag instead of the
        sum of per-query makespans.  Serial-mode queries run on the
        coordinator while the fleet churns.  Results come back in
        request order; duplicates within a batch are mined once.
        """
        self._ensure_open()
        requests = [
            req if isinstance(req, MineRequest) else MineRequest.create(**req)
            for req in requests
        ]
        results: list[MiningResult | None] = [None] * len(requests)
        misses: list[tuple[int, MineRequest, tuple]] = []
        inflight: dict[tuple, int] = {}  # canonical key -> first index mining it
        for i, request in enumerate(requests):
            self.stats.queries += 1
            key = self.query_key(request)
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                # The cache hands out private snapshots, so tagging the
                # copy (consumed by e.g. the CLI's per-row accounting)
                # cannot leak into the stored entry or other callers.
                cached.params["cached"] = True
                results[i] = cached
                continue
            if key in inflight:  # duplicate within this batch
                self.stats.cache_hits += 1
                results[i] = inflight[key]
                continue
            self.stats.cache_misses += 1
            inflight[key] = i
            misses.append((i, request, key))

        jobs = self._dispatch_pooled(misses)

        # Coordinator-side work while the fleet churns on pooled shards.
        # One failing query must not stop the others: every pooled job
        # is always gathered (each job's bus may only be recycled after
        # all of its shards settled, or a straggler from the dead query
        # would publish stale floors into whichever query acquires the
        # segment next), completed work is cached, and the first error
        # is re-raised at the end.
        errors: list[BaseException] = []
        for i, prepared in jobs:
            if prepared.mode == "pooled":
                continue  # gathered below, after the coordinator's work
            try:
                results[i] = self.execute_prepared(prepared)
            except BaseException as exc:
                errors.append(exc)
        for i, prepared in jobs:
            if prepared.mode != "pooled":
                continue
            try:
                results[i] = self._gather(prepared)
            except BaseException as exc:
                errors.append(exc)
        if errors:
            raise errors[0]

        # Resolve in-batch duplicates to their mined sibling's result.
        return [
            r if isinstance(r, MiningResult) else results[r] for r in results
        ]

    # ------------------------------------------------------------------
    # Prepare / execute split (the non-blocking hooks repro.serve uses)
    # ------------------------------------------------------------------
    def query_key(self, request: MineRequest) -> tuple:
        """The result-cache identity of ``request`` over this store."""
        return (self.fingerprint, request.canonical_key(
            self.network.schema, self.network.num_edges
        ))

    @coordinator_only
    def prepare(self, request: MineRequest, floor: float | None = None) -> PreparedQuery:
        """The front half of one query: cache lookup, planning, sharding.

        Returns a :class:`PreparedQuery` whose ``mode`` tells the caller
        how to run the back half — a ``"cached"`` result is already
        final, ``"serial"``/``"inline"`` run via
        :meth:`execute_prepared`, and ``"pooled"`` tasks are the
        caller's to submit (in any interleaving) before :meth:`finish`.
        Stats are counted here, so a scheduler-served query shows up in
        :class:`EngineStats` exactly like a ``sweep()``-served one.

        ``floor`` is an optional *warm-start* threshold: a pooled
        query's threshold bus is checked out pre-seeded with it, so
        every shard starts its dynamic minNhp there instead of at −inf.
        The caller guarantees soundness — the floor must certify ≥ k
        valid results of **this** query scoring at least it (derived
        in :func:`repro.engine.request.warmstart_dominates`; the
        :mod:`repro.serve` admission planner computes such floors from
        dominating sweep points).  Serial/inline/cached modes ignore it.
        """
        self._ensure_open()
        self.stats.queries += 1
        key = self.query_key(request)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            cached.params["cached"] = True
            return PreparedQuery(request=request, key=key, mode="cached", result=cached)
        self.stats.cache_misses += 1
        return self.plan_query(request, key, floor=floor)

    @coordinator_only
    def plan_query(
        self, request: MineRequest, key: tuple, floor: float | None = None
    ) -> PreparedQuery:
        """Plan one cache-missed query into an executable form.

        Serial requests defer all work to execution; pooled requests pay
        branch planning, sharding, the bus checkout and the store-handle
        resolution here, so their tasks can be dispatched without
        touching the engine again.  ``floor`` seeds the pooled bus as on
        :meth:`prepare`.
        """
        if request.workers is None:
            return PreparedQuery(
                request=request, key=key, mode="serial", config=request.to_config()
            )
        config = request.to_config()
        plan = self._armed_skeleton(config).plan_branches()
        workers = min(request.workers, self.workers)
        if request.workers > self.workers and not self._warned_clamp:
            # Once per engine (and per hub network): a sweep of N
            # over-asking requests is one misconfiguration, not N.
            self._warned_clamp = True
            warnings.warn(
                f"request asked for workers={request.workers} but the "
                f"engine's fleet has {self.workers}; clamping (further "
                "clamped requests on this engine stay silent)",
                stacklevel=3,
            )
        warn_if_overprovisioned(workers, len(plan.branches))
        shards = plan_shards(plan.branches, workers)
        pooled = len(shards) > 1 and workers > 1
        bus = None
        applied_floor = None
        timings: dict = {}
        if pooled and config.push_topk and config.k is not None:
            acquire_started = time.perf_counter()
            bus = self._bus_pool().acquire(floor=floor)
            timings["bus_acquire"] = (acquire_started, time.perf_counter())
            if floor is not None:
                applied_floor = float(floor)
                self.stats.warm_starts += 1
                _WARM_STARTS.inc()
        # Inline shards run on this process's own store; pooled ones
        # carry the lease handle so any fleet — including a shared,
        # store-agnostic hub fleet — can attach the right data.  The
        # store export can fail (e.g. /dev/shm exhaustion) *after* the
        # bus checkout above; the checkout is still clean — no task has
        # been submitted — so it must go back to the pool, not strand.
        try:
            store_handle = self._task_store_handle() if pooled else None
            tasks = tuple(
                ShardTask(
                    shard_id=j,
                    branches=branches,
                    config=config,
                    bus_handle=bus.handle() if bus is not None else None,
                    store_handle=store_handle,
                )
                for j, branches in enumerate(shards)
            )
        except BaseException:
            if bus is not None:
                self._bus_pool().release(bus)
            raise
        return PreparedQuery(
            request=request,
            key=key,
            mode="pooled" if pooled else "inline",
            config=config,
            plan=plan,
            tasks=tasks,
            bus=bus,
            floor=applied_floor,
            timings=timings,
        )

    @coordinator_only
    def execute_prepared(self, prepared: PreparedQuery) -> MiningResult:
        """Run a cached / serial / inline prepared query to completion."""
        if prepared.mode == "cached":
            return prepared.result
        if prepared.mode == "serial":
            result = self._mine_serial(prepared.request)
            self._cache.put(prepared.key, result)
            return result
        if prepared.mode == "inline":
            prepared.started = time.perf_counter()
            shard_results = execute_shards_inline(
                self._armed_skeleton(prepared.config), prepared.tasks
            )
            return self.finish(prepared, shard_results)
        raise ValueError(
            "pooled queries are executed by submitting prepared.tasks to "
            "the fleet and calling finish() with the gathered shard results"
        )

    @coordinator_only
    def finish(self, prepared: PreparedQuery, shard_results) -> MiningResult:
        """Merge a pooled/inline query's shard results and cache it.

        Gather order does not matter (the merge is a total-order reduce
        and the stats are sums); results are normalized by shard id so
        the scheduler's completion-order collection is equivalent to the
        sweep's submission-order one.
        """
        merge_started = time.perf_counter()
        shard_results = sorted(shard_results, key=lambda r: r.shard_id)
        entries, stats = merge_shard_results(
            shard_results, prepared.config, prepared.plan.pruned_by_support
        )
        stats.runtime_seconds = time.perf_counter() - prepared.started
        prepared.timings["merge"] = (merge_started, time.perf_counter())
        params = self._armed_skeleton(prepared.config)._params()
        params.update(
            workers=len(prepared.tasks),
            shards=len(prepared.tasks),
            start_method=self.start_method,
            engine=self.fingerprint,
            warm_floor=prepared.floor,
        )
        result = MiningResult(grs=entries, stats=stats, params=params)
        self._cache.put(prepared.key, result)
        return result

    @coordinator_only
    def release_bus(self, prepared: PreparedQuery) -> None:
        """Return a prepared query's bus checkout (idempotent).

        Only safe once every submitted shard of the query has settled —
        or before any was submitted at all.
        """
        if prepared.bus is not None:
            self._bus_pool().release(prepared.bus)
            prepared.bus = None

    # ------------------------------------------------------------------
    # Pooled execution (the blocking sweep path)
    # ------------------------------------------------------------------
    def _dispatch_pooled(self, misses):
        """Plan every miss and interleave pooled task submission."""
        jobs: list[tuple[int, PreparedQuery]] = []
        try:
            for i, request, key in misses:
                jobs.append((i, self.plan_query(request, key)))
        except BaseException:
            # Nothing has been submitted yet, so buses acquired for the
            # jobs planned so far are clean and safe to recycle.
            for _, prepared in jobs:
                self.release_bus(prepared)
            raise

        pooled = [prepared for _, prepared in jobs if prepared.mode == "pooled"]
        if pooled:
            try:
                pool = self._ensure_pool()
                for prepared in pooled:
                    prepared.started = time.perf_counter()
                # Round-robin over jobs so every query progresses at once.
                cursors = [iter(prepared.tasks) for prepared in pooled]
                live = list(range(len(pooled)))
                while live:
                    still = []
                    for j in live:
                        task = next(cursors[j], None)
                        if task is None:
                            continue
                        pooled[j].pending.append(pool.submit(task))
                        still.append(j)
                    live = still
            except BaseException:
                # A bus is only recyclable when none of its query's tasks
                # reached the pool; buses with in-flight shards stay
                # checked out (reclaimed at close()).
                for prepared in pooled:
                    if not prepared.pending:
                        self.release_bus(prepared)
                raise
        return jobs

    def _gather(self, prepared: PreparedQuery) -> MiningResult:
        shard_results = []
        errors: list[BaseException] = []
        for pending in prepared.pending:
            try:
                shard_results.append(pending.get())
            except BaseException as exc:
                errors.append(exc)
        # Every shard has now settled — no straggler can publish to the
        # bus anymore — so recycling it for the next query is safe.
        self.release_bus(prepared)
        if errors:
            raise errors[0]
        return self.finish(prepared, shard_results)

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------
    @coordinator_only
    def _mine_serial(self, request: MineRequest) -> MiningResult:
        result = self._armed_skeleton(request.to_config()).mine()
        result.params["engine"] = self.fingerprint
        return result

    @coordinator_only
    def _armed_skeleton(self, config: MinerConfig) -> GRMiner:
        """The engine's one serial miner, re-targeted to ``config``."""
        if self._skeleton is None:
            self._skeleton = GRMiner(self.network, store=self.store, config=config)
        elif self._skeleton.config != config:
            self._skeleton.rearm(config)
        return self._skeleton

    # ------------------------------------------------------------------
    # Store mutation (append-edge deltas)
    # ------------------------------------------------------------------
    @coordinator_only
    def append_edges(self, src, dst, edge_codes=None, on_duplicate: str = "allow") -> str:
        """Apply an append-edge delta to the served network, safely.

        Appends the edges (:meth:`SocialNetwork.append_edges`, whose
        ``on_duplicate`` policy passes through), rebuilds the store's
        edge-derived arrays (:meth:`CompactStore.apply_delta`) and then
        :meth:`refresh_store`s the serving state, handing the returned
        :class:`~repro.data.store.StoreDelta` to the cache migrator.
        Returns the new store fingerprint.  Do not mutate
        ``engine.network`` directly — the engine would keep serving
        pre-delta results from its caches.

        An empty delta short-circuits after validation: nothing changed,
        so neither the store rebuild nor the refresh is paid.

        The post-mutation sequence is transactional: once the network
        has mutated, a failure in the rebuild/refresh is retried once
        through the degraded full-purge path (with a warning); if the
        retry fails too the engine *poisons* itself — every subsequent
        query raises instead of silently serving pre-delta answers for
        the post-delta network.  Validation errors (bad endpoints,
        rejected duplicates) raise before any mutation and leave the
        engine healthy.
        """
        self._ensure_open()
        appended = self.network.append_edges(
            src, dst, edge_codes, on_duplicate=on_duplicate
        )
        if appended == 0:
            return self.fingerprint
        try:
            delta = self.store.apply_delta()
            return self.refresh_store(delta)
        except BaseException as exc:
            try:
                self.store.apply_delta()
                new = self.refresh_store()
            except BaseException:
                self._poisoned = (
                    "append_edges mutated the network, then both the "
                    "store rebuild/refresh and its full-rebuild retry "
                    "failed; cached state may describe the pre-delta "
                    "edge set. Recreate the engine over this network."
                )
                raise exc
            warnings.warn(
                "append_edges: the delta-aware refresh failed "
                f"({exc!r}); recovered through a full rebuild + cache "
                "purge, so results stay correct but this delta mined cold",
                stacklevel=2,
            )
            return new

    @coordinator_only
    def refresh_store(self, delta: StoreDelta | None = None) -> str:
        """Re-sync serving state after the backing store was rebuilt.

        Re-reads the fingerprint; when it changed, drops the serial
        skeleton (its column gathers and first-level partitions describe
        the old edge set), retires the shared-memory lease (workers
        attach the next export per task) and hands the old fingerprint's
        result-cache entries to :func:`repro.engine.delta.migrate_fingerprint`:
        entries the delta provably did not invalidate are re-keyed to
        the new fingerprint with only their touched branches re-mined;
        the rest are purged (they could never be served again — lookups
        use the new fingerprint — but they would pollute the LRU and any
        disk tier).  With no ``delta`` (an untracked mutation) every
        entry is purged, today's degraded-but-always-sound path.  The
        worker fleet itself survives: tasks carry their store handles,
        so no respawn is needed.
        """
        old = self.fingerprint
        new = self.store.fingerprint()
        if new == old:
            return new
        self.fingerprint = new
        self.stats.invalidations += 1
        _INVALIDATIONS.inc()
        self._skeleton = None
        self._release_lease()
        report = migrate_fingerprint(self, old, delta)
        self.stats.migrated_entries += report.migrated
        self.stats.purged_entries += report.purged
        self.stats.migration_fallbacks += report.fallbacks
        _DELTA_MIGRATED.inc(report.migrated)
        _DELTA_PURGED.inc(report.purged)
        _DELTA_FALLBACKS.inc(report.fallbacks)
        return new

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @coordinator_only
    def _ensure_lease(self) -> SharedStoreLease:
        """The live export of the *current* store version (≥ 0 exports:
        kept across pool-spawn failures, retired by refresh_store)."""
        if self._lease is None or self._lease.closed:
            self._lease = self.store.lease_shared()
            self.stats.exports += 1
            _LEASE_EXPORTS.inc()
        return self._lease

    @coordinator_only
    def _release_lease(self) -> None:
        if self._lease is not None:
            self._lease.close()
            self._lease = None

    @coordinator_only
    def _task_store_handle(self) -> SharedStoreHandle:
        """The store handle pooled shard tasks must carry."""
        return self._ensure_lease().handle

    @coordinator_only
    def _ensure_pool(self) -> PersistentWorkerPool:
        if self._pool is None:
            # The lease is kept if the spawn below fails: the export
            # succeeded and is reusable, so a retry must not pay (or
            # count) a second one.
            lease = self._ensure_lease()
            self._pool = PersistentWorkerPool(
                lease.handle,
                processes=self.workers,
                start_method=self.start_method,
                threshold_refresh=self.threshold_refresh,
            )
            self.stats.pool_spawns += 1
        return self._pool

    @coordinator_only
    def _bus_pool(self) -> BusPool:
        if self._buses is None:
            self._buses = BusPool(num_slots=self.workers)
        return self._buses

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("MiningEngine is closed")
        if self._poisoned is not None:
            raise RuntimeError(f"MiningEngine is poisoned: {self._poisoned}")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, force: bool = False) -> None:
        """Release the pool, the buses and the store lease (idempotent).

        Closing while pooled shard tasks are still in flight fails fast
        with a :class:`RuntimeError` instead of tearing the fleet down
        under a gatherer: terminating the pool would leave whoever is
        blocked in ``AsyncResult.get()`` waiting forever and strand the
        query's bus checkout.  Drain or cancel the in-flight queries
        first, or pass ``force=True`` to accept the hard teardown (the
        path ``__exit__`` takes when an exception is already unwinding —
        after a worker crash mid-query the pool is torn down hard and
        the lease's guaranteed unlink keeps ``/dev/shm`` clean).
        """
        if self._closed:
            return
        self._guard_inflight(force, "MiningEngine")
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        if self._buses is not None:
            self._buses.close()
            self._buses = None
        self._release_lease()
        if self._owns_cache:
            self._cache.close()

    def _guard_inflight(self, force: bool, who: str) -> None:
        if force or self._pool is None:
            return
        inflight = self._pool.inflight
        if inflight > 0:
            raise RuntimeError(
                f"{who}.close() with {inflight} pooled shard task(s) still "
                "in flight — terminating the fleet now would block their "
                "gatherer forever and leak the query's threshold bus; "
                "drain or cancel the in-flight queries first, or call "
                "close(force=True) for a hard teardown"
            )

    def __enter__(self) -> "MiningEngine":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # An unwinding exception may have left shards in flight (that is
        # precisely the crash-cleanup path), so the guard is waived.
        self.close(force=exc_type is not None)

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "pooled" if self._pool is not None else "idle"
        )
        return (
            f"MiningEngine(fingerprint={self.fingerprint[:12]}, "
            f"workers={self.workers}, {state}, "
            f"queries={self.stats.queries}, cache_hits={self.stats.cache_hits})"
        )
