"""Delta-aware cache migration: incremental re-mining after append_edges.

The compact store's first level partitions the GR space by the LHS's
latest-in-τ assignment (:class:`~repro.core.miner.BranchSpec`), and an
append-edge delta's footprint on that level is computable exactly: a
first-level branch ``(attr, v)`` gained edges iff some new edge's source
carries ``attr = v`` (:class:`~repro.data.store.StoreDelta`'s
``touched_partitions``).  Since every edge selected by a GR's ``l ∧ w``
conditions matches *all* of its LHS assignments — in particular the
branch assignment — a GR in an untouched branch keeps its l∧w edge set
bit-for-bit, and with it its support, lw, homophily counts and score.

:func:`migrate_fingerprint` exploits that instead of purging the whole
superseded fingerprint: each cached entry is either *migrated* — its
untouched-branch members carried over (re-verified on the new store) and
only the touched branches re-mined through the ordinary
:meth:`~repro.core.miner.GRMiner.plan_branches` /
:meth:`~repro.core.miner.GRMiner.mine_branch` entry points, then merged
through the same total-order reduce every sharded query uses — or
*purged*, whenever any link of the proof below cannot be established.
The fallback is always available and always sound: a purged entry is
simply re-mined cold on its next request.

Soundness of a migrated entry (why the merge equals a cold re-mine)
-------------------------------------------------------------------
Let ``R_old`` be the cached result, ``T`` the touched branches (plus the
root branch, whose empty-LHS GRs select over all edges), ``U'`` the
``R_old`` members in untouched branches that survive re-verification,
and ``C_T`` the fresh top-k of the branches in ``T``.  The migrated
result is ``merge(U', C_T)``.  Eligibility conditions and what each one
buys:

* **Sharded mode only.**  Sharded entries carry exact Definition 5
  semantics (cross-shard verification decides blocking from first
  principles), so set equalities below are well-defined.  Serial
  ``GRMiner(k)`` entries are path-dependent (DESIGN.md §5.5's
  blocker-in-pruned-subtree case) and are always purged.
* **Ranking ∈ {nhp, confidence, laplace}.**  These depend only on the
  candidate's own counts, which are unchanged in untouched branches.
  ``gain`` divides by ``|E|``, so *every* score moves with the delta —
  gain entries are always purged.
* **``min_score == 0`` or generality off.**  Appending edges can only
  grow supports, so a condition-(1) blocker never loses its support
  qualification; with ``min_score == 0`` (scores are non-negative) it
  cannot lose score qualification either.  Hence *blocked stays
  blocked*: a GR absent from ``R_old`` because of Definition 5(2)
  cannot re-qualify, so untouched branches spring no new members.
  Newly *qualifying* blockers (their counts grew) are handled in the
  other direction by re-checking each ``U'`` member against
  :class:`~repro.parallel.worker.CrossShardGeneralityVerifier`.

Given those, every valid post-delta GR is either in a touched branch
(exactly covered by ``C_T``) or untouched — then its metrics are
unchanged, so it was valid pre-delta, so it is in ``R_old`` unless
``R_old`` was truncated at ``k``.  Truncation is the one remaining gap,
closed at merge time: with ``t*`` the rank key of ``R_old``'s k-th
entry, any valid GR missing from ``U' ∪ C_T`` ranks strictly below
``t*`` (rank keys are a total order and untouched keys did not move), so
the merge is provably exact when it yields ``k`` entries all ranking at
or above ``t*`` — and falls back otherwise.  When ``R_old`` held fewer
than ``k`` entries it was complete, and the merge is exact
unconditionally.

Re-verification of ``U'`` members doubles as a tripwire: the recomputed
counts must equal the cached ones.  A mismatch means some assumption was
violated (e.g. the store was mutated behind the delta's back), and the
whole entry falls back to the purge path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.miner import GRMiner, MinerConfig, config_from_canonical_key
from ..core.results import MinedGR, MiningResult, MiningStats
from ..core.topk import TopKCollector
from ..data.store import StoreDelta
from ..parallel.miner import merge_shard_results
from ..parallel.worker import CrossShardGeneralityVerifier, ShardResult
from ..serve.markers import coordinator_only
from .request import split_canonical_key

__all__ = ["MigrationReport", "migrate_fingerprint"]

#: Rankings whose score is a function of the candidate's own counts
#: alone (an untouched branch therefore keeps its scores exactly).
_COUNT_LOCAL_RANKINGS = ("nhp", "confidence", "laplace")


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of migrating one superseded fingerprint."""

    #: Entries re-keyed to the new fingerprint with a combined result.
    migrated: int = 0
    #: Entries dropped (ineligible, failed a safety check, or the whole
    #: delta was unprovable) — their queries re-mine cold on next use.
    purged: int = 0
    #: The subset of ``purged`` that *looked* migratable but failed a
    #: safety check during the combine (count mismatch, top-k
    #: truncation, a combine error).
    fallbacks: int = 0


def _rank_key(entry: MinedGR) -> tuple:
    """The Definition 5 total order (matches TopKCollector.offer)."""
    return (-entry.score, -entry.metrics.support_count, entry.gr.sort_key())


def _code_maps(gr, schema) -> tuple[dict, dict, dict]:
    """A cached GR's label descriptors back as code-level maps."""
    l_map = {n: schema.node_attribute(n).code(v) for n, v in gr.lhs.items}
    w_map = {n: schema.edge_attribute(n).code(v) for n, v in gr.edge.items}
    r_map = {n: schema.node_attribute(n).code(v) for n, v in gr.rhs.items}
    return l_map, w_map, r_map


def _entry_branch(l_map: dict, tau) -> tuple[str, int] | None:
    """The first-level branch owning this LHS: its latest-in-τ
    assignment; ``None`` is the root branch (empty LHS)."""
    for token in reversed(tau):
        if token.role == "L" and token.attr in l_map:
            return (token.attr, l_map[token.attr])
    return None


@coordinator_only
def migrate_fingerprint(engine, old_fingerprint: str, delta: StoreDelta | None) -> MigrationReport:
    """Migrate or purge every cache entry under ``old_fingerprint``.

    Called by :meth:`MiningEngine.refresh_store` after the store was
    rebuilt and ``engine.fingerprint`` already points at the new
    version.  Entries are *taken* (removed) from the cache first, so any
    failure mid-migration degrades to the old purge behaviour — stale
    keys can never be served, and each successfully migrated entry was
    validated independently before being re-inserted.
    """
    cache = engine._cache
    take = getattr(cache, "take_fingerprint", None)
    if (
        take is None
        or delta is None
        or delta.untracked
        or delta.num_new_edges <= 0
    ):
        return MigrationReport(purged=cache.purge_fingerprint(old_fingerprint))
    migrated = purged = fallbacks = 0
    for key, result in take(old_fingerprint):
        combined = None
        status = "ineligible"
        if isinstance(key, tuple) and len(key) == 2:
            try:
                status, combined = _migrate_entry(engine, key[1], result, delta)
            except Exception:
                status, combined = "fallback", None
        if combined is None:
            purged += 1
            fallbacks += status == "fallback"
        else:
            cache.put((engine.fingerprint, key[1]), combined)
            migrated += 1
    return MigrationReport(migrated=migrated, purged=purged, fallbacks=fallbacks)


def _eligible_config(ckey) -> MinerConfig | None:
    """Decode an entry's request key iff it is provably migratable.

    ``ckey`` is a :meth:`MineRequest.canonical_key`: the execution mode
    followed by the 17 :meth:`MinerConfig.canonical_key` fields.
    """
    split = split_canonical_key(ckey)
    if split is None or split[0] != "sharded":
        return None  # malformed key, or serial: §5.5-path-dependent
    config = config_from_canonical_key(split[1])
    if config.rank_by not in _COUNT_LOCAL_RANKINGS:
        return None  # gain rescales every score with |E|
    if config.apply_generality and config.min_score > 0.0:
        return None  # a blocker could *lose* qualification → un-blocking
    return config


def _migrate_entry(
    engine, ckey, result: MiningResult, delta: StoreDelta
) -> tuple[str, MiningResult | None]:
    """Combine one cached entry with a touched-branch re-mine.

    Returns ``(status, result-or-None)`` where a ``None`` result means
    the entry must be purged: ``status`` distinguishes entries that were
    never eligible from safety-check fallbacks.
    """
    started = time.perf_counter()
    config = _eligible_config(ckey)
    if config is None:
        return "ineligible", None
    schema = engine.network.schema

    skeleton: GRMiner = engine._armed_skeleton(config)
    plan = skeleton.plan_branches()
    touched = delta.touched_partitions
    tau = plan.tau
    verifier = (
        CrossShardGeneralityVerifier(skeleton) if config.apply_generality else None
    )

    # --- carry over untouched-branch members, re-verified on the new
    # store (the root branch — empty LHS — is touched by construction).
    survivors: list[MinedGR] = []
    for entry in result.grs:
        l_map, w_map, r_map = _code_maps(entry.gr, schema)
        branch = _entry_branch(l_map, tau)
        if branch is None or branch in touched:
            continue  # superseded by the touched-branch re-mine
        metrics, trivial = skeleton.evaluate_codes(l_map, w_map, r_map)
        score = skeleton._score(metrics)
        if (
            metrics.support_count != entry.metrics.support_count
            or metrics.lw_count != entry.metrics.lw_count
            or metrics.homophily_count != entry.metrics.homophily_count
            or score != entry.score
        ):
            # The untouched-branch invariant failed — something mutated
            # outside the delta's account.  Trust nothing in this entry.
            return "fallback", None
        if verifier is not None and verifier(l_map, w_map, r_map):
            continue  # a blocker newly qualified; Definition 5(2) drops it
        survivors.append(MinedGR(gr=entry.gr, metrics=metrics, score=score))

    # --- re-mine only the touched branches, with the same per-candidate
    # machinery the sharded workers use (their exactness carries over).
    touched_branches = tuple(
        b
        for b in plan.branches
        if b.kind == "root" or (b.attr, b.value) in touched
    )
    collector = TopKCollector(
        k=config.k if config.push_topk else None, min_score=float(config.min_score)
    )
    skeleton._begin(collector)
    skeleton._candidate_verifier = verifier
    for branch in touched_branches:
        skeleton.mine_branch(plan.tau, branch)
    mined = ShardResult(
        shard_id=1,
        entries=skeleton._collector.results(),
        stats=skeleton._stats,
    )
    carried = ShardResult(shard_id=0, entries=survivors, stats=MiningStats())
    entries, stats = merge_shard_results(
        [carried, mined], config, plan.pruned_by_support
    )

    # --- threshold-truncation safety: if the old result was truncated
    # at k, an untouched candidate just below its k-th rank key t* is in
    # neither U' nor C_T; the merge is only provably exact when k slots
    # fill at or above t*.
    if config.k is not None and len(result.grs) >= config.k:
        t_star = _rank_key(result.grs[-1])
        if len(entries) < config.k or _rank_key(entries[-1]) > t_star:
            return "fallback", None

    stats.runtime_seconds = time.perf_counter() - started
    params = dict(result.params)
    params.pop("cached", None)
    params.update(
        engine=engine.fingerprint,
        migrated=True,
        branches_mined=len(touched_branches),
        branches_total=len(plan.branches),
    )
    return "migrated", MiningResult(grs=entries, stats=stats, params=params)
