"""MineRequest — one mining query, addressed to a :class:`MiningEngine`.

A request is the user-facing sibling of
:class:`~repro.core.miner.MinerConfig`: it speaks the paper's vocabulary
(``min_nhp``, ``k``) plus an execution hint (``workers``), normalizes
into a config for the miner skeletons, and canonicalizes into the
engine's cache key.  Requests are frozen and hashable so they can be
deduplicated, batched and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.miner import MinerConfig

__all__ = ["MineRequest"]

#: MineRequest fields that are *not* forwarded as MinerConfig options.
_OWN_FIELDS = frozenset({"k", "min_support", "min_nhp", "rank_by", "push_topk", "workers"})


@dataclass(frozen=True)
class MineRequest:
    """Parameters of one top-k GR mining query.

    Parameters
    ----------
    k, min_support, min_nhp, rank_by, push_topk:
        As on :class:`~repro.core.miner.GRMiner` (``min_nhp`` maps to its
        ``min_score``).
    workers:
        ``None`` runs the query on the engine's serial miner skeleton;
        an integer routes it through the engine's shared worker pool
        (clamped to the pool size), with ``workers=1`` running the shard
        machinery in-process.  Thanks to the determinism guarantee the
        *answer* does not depend on the count — only the latency and the
        serial-heuristic-vs-exact distinction of DESIGN.md §5.5 do,
        which is why only the serial/sharded mode bit enters the cache
        key.
    options:
        Any further :class:`~repro.core.miner.MinerConfig` field (e.g.
        ``node_attributes``, ``allow_empty_lhs``,
        ``dynamic_rhs_ordering``) as a sorted tuple of ``(name, value)``
        pairs.  Use :meth:`create` to pass them as plain keywords.
    """

    k: int | None = 10
    min_support: int | float = 1
    min_nhp: float = 0.0
    rank_by: str = "nhp"
    push_topk: bool = True
    workers: int | None = None
    options: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None (serial) or a positive count")
        options = []
        for name, value in (
            self.options.items() if isinstance(self.options, dict) else self.options
        ):
            if name in _OWN_FIELDS or name in ("min_score",):
                raise ValueError(
                    f"{name!r} is a first-class MineRequest field, not an option"
                )
            if isinstance(value, list):
                value = tuple(value)
            options.append((name, value))
        object.__setattr__(self, "options", tuple(sorted(options)))
        self.to_config()  # validate eagerly: a bad request fails at build time

    @classmethod
    def create(cls, k: int | None = 10, min_support: int | float = 1,
               min_nhp: float = 0.0, rank_by: str = "nhp", push_topk: bool = True,
               workers: int | None = None, **options) -> "MineRequest":
        """Build a request with extra miner options as plain keywords.

        ``min_score`` is accepted as an alias of ``min_nhp`` so GRMiner
        keyword dictionaries can be forwarded verbatim.
        """
        if "min_score" in options:
            min_nhp = options.pop("min_score")
        return cls(
            k=k,
            min_support=min_support,
            min_nhp=min_nhp,
            rank_by=rank_by,
            push_topk=push_topk,
            workers=workers,
            options=tuple(options.items()),
        )

    def with_workers(self, workers: int | None) -> "MineRequest":
        """The same query under a different execution mode."""
        return replace(self, workers=workers)

    # ------------------------------------------------------------------
    def to_config(self) -> MinerConfig:
        """The miner-facing form of this request (validates on build)."""
        return MinerConfig(
            min_support=self.min_support,
            min_score=self.min_nhp,
            k=self.k,
            rank_by=self.rank_by,
            push_topk=self.push_topk,
            **dict(self.options),
        )

    def canonical_key(self, schema, num_edges: int) -> tuple:
        """Hashable result identity: execution mode + resolved params.

        Two requests with equal keys (over equal stores) are guaranteed
        the same result list, which is exactly what the engine's LRU
        cache needs.  The worker *count* is excluded — the sharded
        answer is worker-count deterministic — but the serial/sharded
        mode is not, because serial GRMiner(k)'s dynamic-threshold
        heuristic may hold fewer entries (DESIGN.md §5.5).
        """
        mode = "serial" if self.workers is None else "sharded"
        return (mode,) + self.to_config().canonical_key(schema, num_edges)

    def describe(self) -> str:
        """Compact human-readable form for tables and logs."""
        parts = [
            f"k={self.k}",
            f"minSupp={self.min_support}",
            f"minNhp={self.min_nhp}",
            f"rank_by={self.rank_by}",
        ]
        if not self.push_topk:
            parts.append("push_topk=False")
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        parts.extend(f"{name}={value}" for name, value in self.options)
        return " ".join(parts)
