"""MineRequest — one mining query, addressed to a :class:`MiningEngine`.

A request is the user-facing sibling of
:class:`~repro.core.miner.MinerConfig`: it speaks the paper's vocabulary
(``min_nhp``, ``k``) plus an execution hint (``workers``), normalizes
into a config for the miner skeletons, and canonicalizes into the
engine's cache key.  Requests are frozen and hashable so they can be
deduplicated, batched and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.miner import (
    CKEY_ABS_SUPPORT,
    CKEY_APPLY_GENERALITY,
    CKEY_FIELDS,
    CKEY_K,
    CKEY_MIN_SCORE,
    CKEY_PUSH_TOPK,
    MinerConfig,
)

__all__ = ["MineRequest", "split_canonical_key", "warmstart_dominates"]

#: MineRequest fields that are *not* forwarded as MinerConfig options.
_OWN_FIELDS = frozenset({"k", "min_support", "min_nhp", "rank_by", "push_topk", "workers"})


@dataclass(frozen=True)
class MineRequest:
    """Parameters of one top-k GR mining query.

    Parameters
    ----------
    k, min_support, min_nhp, rank_by, push_topk:
        As on :class:`~repro.core.miner.GRMiner` (``min_nhp`` maps to its
        ``min_score``).
    workers:
        ``None`` runs the query on the engine's serial miner skeleton;
        an integer routes it through the engine's shared worker pool
        (clamped to the pool size), with ``workers=1`` running the shard
        machinery in-process.  Thanks to the determinism guarantee the
        *answer* does not depend on the count — only the latency and the
        serial-heuristic-vs-exact distinction of DESIGN.md §5.5 do,
        which is why only the serial/sharded mode bit enters the cache
        key.
    options:
        Any further :class:`~repro.core.miner.MinerConfig` field (e.g.
        ``node_attributes``, ``allow_empty_lhs``,
        ``dynamic_rhs_ordering``) as a sorted tuple of ``(name, value)``
        pairs.  Use :meth:`create` to pass them as plain keywords.
    """

    k: int | None = 10
    min_support: int | float = 1
    min_nhp: float = 0.0
    rank_by: str = "nhp"
    push_topk: bool = True
    workers: int | None = None
    options: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None (serial) or a positive count")
        options = []
        for name, value in (
            self.options.items() if isinstance(self.options, dict) else self.options
        ):
            if name in _OWN_FIELDS or name in ("min_score",):
                raise ValueError(
                    f"{name!r} is a first-class MineRequest field, not an option"
                )
            if isinstance(value, list):
                value = tuple(value)
            options.append((name, value))
        object.__setattr__(self, "options", tuple(sorted(options)))
        self.to_config()  # validate eagerly: a bad request fails at build time

    @classmethod
    def create(cls, k: int | None = 10, min_support: int | float = 1,
               min_nhp: float = 0.0, rank_by: str = "nhp", push_topk: bool = True,
               workers: int | None = None, **options) -> "MineRequest":
        """Build a request with extra miner options as plain keywords.

        ``min_score`` is accepted as an alias of ``min_nhp`` so GRMiner
        keyword dictionaries can be forwarded verbatim.
        """
        if "min_score" in options:
            min_nhp = options.pop("min_score")
        return cls(
            k=k,
            min_support=min_support,
            min_nhp=min_nhp,
            rank_by=rank_by,
            push_topk=push_topk,
            workers=workers,
            options=tuple(options.items()),
        )

    def with_workers(self, workers: int | None) -> "MineRequest":
        """The same query under a different execution mode."""
        return replace(self, workers=workers)

    # ------------------------------------------------------------------
    def to_config(self) -> MinerConfig:
        """The miner-facing form of this request (validates on build)."""
        return MinerConfig(
            min_support=self.min_support,
            min_score=self.min_nhp,
            k=self.k,
            rank_by=self.rank_by,
            push_topk=self.push_topk,
            **dict(self.options),
        )

    def canonical_key(self, schema, num_edges: int) -> tuple:
        """Hashable result identity: execution mode + resolved params.

        Two requests with equal keys (over equal stores) are guaranteed
        the same result list, which is exactly what the engine's LRU
        cache needs.  The worker *count* is excluded — the sharded
        answer is worker-count deterministic — but the serial/sharded
        mode is not, because serial GRMiner(k)'s dynamic-threshold
        heuristic may hold fewer entries (DESIGN.md §5.5).
        """
        mode = "serial" if self.workers is None else "sharded"
        return (mode,) + self.to_config().canonical_key(schema, num_edges)

    def describe(self) -> str:
        """Compact human-readable form for tables and logs."""
        parts = [
            f"k={self.k}",
            f"minSupp={self.min_support}",
            f"minNhp={self.min_nhp}",
            f"rank_by={self.rank_by}",
        ]
        if not self.push_topk:
            parts.append("push_topk=False")
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        parts.extend(f"{name}={value}" for name, value in self.options)
        return " ".join(parts)


def split_canonical_key(full_key) -> tuple[str, tuple] | None:
    """Split a full :meth:`MineRequest.canonical_key` into
    ``(mode, config_key)`` — or ``None`` if it is not one.

    This is the only sanctioned way for layers outside the two
    layout-owning modules (this one and :mod:`repro.core.miner`) to peel
    the execution-mode prefix off a canonical key: the ``ckey-layout``
    lint rule forbids positional subscripts everywhere else, so layout
    changes stay localized.  Validates shape (a tuple of
    ``1 + CKEY_FIELDS`` entries whose head is ``"serial"`` or
    ``"sharded"``) rather than trusting the caller, because cache keys
    round-trip through the sqlite disk tier and may predate the current
    layout.
    """
    if (
        isinstance(full_key, tuple)
        and len(full_key) == 1 + CKEY_FIELDS
        and full_key[0] in ("serial", "sharded")
    ):
        return full_key[0], full_key[1:]
    return None


#: Canonical-key positions masked by the warm-start dominance check —
#: the two threshold fields that may differ between seed and dependent.
_THRESHOLD_SLOTS = frozenset({CKEY_ABS_SUPPORT, CKEY_MIN_SCORE})


def _invariant_part(config_key: tuple) -> tuple:
    return tuple(
        value for i, value in enumerate(config_key) if i not in _THRESHOLD_SLOTS
    )


def warmstart_dominates(seed_key: tuple, dependent_key: tuple) -> bool:
    """Whether mining ``seed_key``'s query first yields a *sound*
    warm-start floor for ``dependent_key``'s query.

    Both arguments are full :meth:`MineRequest.canonical_key` tuples
    (execution mode followed by the resolved
    :meth:`~repro.core.miner.MinerConfig.canonical_key` fields) over the
    **same store fingerprint** — the caller is responsible for the
    fingerprint check, since the keys themselves do not carry it.

    Soundness derivation
    --------------------
    A threshold floor ``t`` may seed a query Q's dynamic minNhp iff Q
    has at least ``k`` valid results scoring ``>= t``: then any GR
    scoring strictly below ``t`` is outside Q's top-k (score is the
    primary rank key), so rejecting it early — exactly what the
    :class:`~repro.parallel.bus.ThresholdBus` floor does, with a strict
    comparison — can never change Q's answer.  The candidate floor is
    the seed's k-th-best score, which certifies ``k`` seed results
    scoring ``>= t``.  Those results carry over to the dependent when:

    * **Every non-threshold field coincides** (k, rank_by, push_topk,
      attribute lists, caps, ...): the two queries then enumerate the
      same GR space and rank it identically, differing only in which
      GRs *qualify*.
    * **The seed's thresholds are at least as strict**:
      ``abs_min_support(seed) >= abs_min_support(dep)`` and
      ``min_score(seed) >= min_score(dep)``.  Each seed result then
      meets the dependent's condition (1) too (its support and score
      clear the seed's higher bars).

    With generality verification **off** (``apply_generality=False``),
    condition (1) is the whole story and both threshold axes may relax
    monotonically.

    With generality verification **on**, Definition 5(2) adds a trap:
    a seed result ``e`` is only a *valid* dependent result if no more
    general GR with the same RHS qualifies under the **dependent's**
    thresholds.  A generalization ``g`` of ``e`` always has
    ``supp(g) >= supp(e)`` (its edge set is a superset — Theorem 2(1)),
    so relaxing ``min_support`` can never newly qualify a blocker: any
    ``g`` qualifying under the dependent's laxer support bound already
    had ``supp(g) >= supp(e) >= abs_min_support(seed)`` and would have
    blocked ``e`` in the seed run — contradiction.  But ``score(g)`` is
    **not** monotone under generalization, so relaxing ``min_nhp`` can
    qualify a blocker with ``min_nhp(dep) <= score(g) <
    min_nhp(seed)``, silently removing ``e`` from the dependent's valid
    set and breaking the "k results >= t" certificate.  Hence with
    generality on, only the support axis may relax; ``min_score`` must
    be equal.

    Only ``"sharded"``-mode keys with a dynamic top-k (``push_topk``
    and a finite ``k``) are eligible: the floor is delivered through
    the threshold bus of the pooled path, whose per-candidate direct
    generality verification makes the argument above exact (serial
    GRMiner(k)'s index-based check is already heuristic per DESIGN.md
    §5.5 and gets no bus).  Identical keys are *not* dominance — they
    are the single-flight dedup case.
    """
    if seed_key == dependent_key:
        return False
    if seed_key[0] != "sharded" or dependent_key[0] != "sharded":
        return False
    seed_cfg, dep_cfg = seed_key[1:], dependent_key[1:]
    if seed_cfg[CKEY_K] is None or not seed_cfg[CKEY_PUSH_TOPK]:
        return False
    if _invariant_part(seed_cfg) != _invariant_part(dep_cfg):
        return False
    support_ok = seed_cfg[CKEY_ABS_SUPPORT] >= dep_cfg[CKEY_ABS_SUPPORT]
    if seed_cfg[CKEY_APPLY_GENERALITY]:
        return support_ok and seed_cfg[CKEY_MIN_SCORE] == dep_cfg[CKEY_MIN_SCORE]
    return support_ok and seed_cfg[CKEY_MIN_SCORE] >= dep_cfg[CKEY_MIN_SCORE]
