"""Result-cache tiers for the mining engine and hub.

Keys are ``(store fingerprint, request canonical key)`` tuples — see
:meth:`CompactStore.fingerprint` and :meth:`MineRequest.canonical_key` —
so a hit is only possible when both the data and the (resolved) query
parameters are identical, an engine serving modified data can never
return stale results, and caches may be shared across networks (an
:class:`~repro.engine.hub.EngineHub` keeps one cache for all of its
registered networks; fingerprints keep the entries apart).

Three tiers with one contract (``get`` / ``put`` / ``purge_fingerprint``
/ ``take_fingerprint`` / ``clear`` / ``close``):

* :class:`ResultCache` — in-memory LRU.  Entries are stored as pickled
  *snapshots*: ``put`` serializes, ``get`` deserializes, so every caller
  receives a private copy and mutating a returned result can never
  poison a future hit (nor can mutating the object after ``put``).
* :class:`DiskResultCache` — one sqlite file keyed by
  ``(fingerprint, pickled canonical key)``, values pickled
  :class:`~repro.core.results.MiningResult` snapshots.  A restarted
  process answers previously mined queries without re-mining.  Loads are
  corruption-tolerant: unreadable files and undecodable rows degrade to
  misses (a corrupt file is recreated), never to exceptions.  The file
  is bounded: ``max_bytes`` caps the summed value size with
  LRU-by-``last_used`` eviction, and ``ttl_seconds`` expires entries not
  served within that window (both optional; the default stays
  unbounded for backward compatibility).
* :class:`TieredResultCache` — memory over disk: hits promote to the
  memory tier, writes and purges go to both.

The disk tier is internally locked and its connection is shared across
threads — the :mod:`repro.serve` coordinator thread reads and writes the
cache a different thread constructed.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Hashable

from ..obs.metrics import REGISTRY
from ..serve.markers import coordinator_only

__all__ = ["DiskResultCache", "ResultCache", "TieredResultCache"]

_CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "Result-cache hits, by tier.", labels=("tier",)
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total", "Result-cache misses, by tier.", labels=("tier",)
)
_CACHE_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total",
    "Result-cache entries evicted by a size cap, by tier.",
    labels=("tier",),
)
_CACHE_EXPIRATIONS = REGISTRY.counter(
    "repro_cache_expirations_total",
    "Result-cache entries expired by TTL, by tier.",
    labels=("tier",),
)
_MEM_HITS = _CACHE_HITS.labels(tier="memory")
_MEM_MISSES = _CACHE_MISSES.labels(tier="memory")
_MEM_EVICTIONS = _CACHE_EVICTIONS.labels(tier="memory")
_DISK_HITS = _CACHE_HITS.labels(tier="disk")
_DISK_MISSES = _CACHE_MISSES.labels(tier="disk")
_DISK_EVICTIONS = _CACHE_EVICTIONS.labels(tier="disk")
_DISK_EXPIRATIONS = _CACHE_EXPIRATIONS.labels(tier="disk")

#: Fixed protocol so key blobs are stable across interpreter runs.
_PICKLE_PROTOCOL = 4


def _now() -> float:
    """Wall-clock source for TTL/LRU stamps (patchable in tests)."""
    return time.time()


def _key_fingerprint(key: Hashable) -> str | None:
    """The fingerprint component of an engine cache key, if it has one."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return None


class ResultCache:
    """A snapshotting LRU mapping.  Hit/miss accounting lives in
    :class:`~repro.engine.engine.EngineStats`, which also sees the
    in-batch duplicates this cache never receives.

    ``maxsize=0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op) — the engine exposes that as ``cache_size=0``.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, bytes] = OrderedDict()

    def get(self, key: Hashable):
        """A private copy of the cached value, refreshed to most-recent,
        or ``None``.  Each call deserializes a fresh object — callers may
        mutate what they receive without poisoning later hits."""
        try:
            blob = self._entries[key]
        except KeyError:
            _MEM_MISSES.inc()
            return None
        self._entries.move_to_end(key)
        _MEM_HITS.inc()
        return pickle.loads(blob)

    def put(self, key: Hashable, value) -> None:
        """Snapshot ``value`` into the cache (later mutation of the
        caller's object does not reach the stored copy)."""
        if self.maxsize == 0:
            return
        self._entries[key] = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            _MEM_EVICTIONS.inc()

    @coordinator_only
    def purge_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry keyed under ``fingerprint``; returns the count.

        Entries of a superseded store version could never be *served*
        again (lookups use the new fingerprint) — the purge exists so
        dead keys stop occupying LRU capacity that live entries need.
        """
        stale = [
            key for key in self._entries if _key_fingerprint(key) == fingerprint
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    @coordinator_only
    def take_fingerprint(self, fingerprint: str) -> list[tuple]:
        """Remove and return ``(key, value)`` for every entry under
        ``fingerprint``.

        The destructive read behind delta *migration*: the engine takes
        a superseded fingerprint's entries, re-keys the ones it can
        prove still valid and drops the rest — either way the stale keys
        are gone, so a half-completed migration degrades to today's
        purge, never to serving a stale entry.  Values are deserialized
        snapshots, private to the caller like ``get``'s.
        """
        taken = []
        for key in [
            key for key in self._entries if _key_fingerprint(key) == fingerprint
        ]:
            blob = self._entries.pop(key)
            taken.append((key, pickle.loads(blob)))
        return taken

    def clear(self) -> None:
        self._entries.clear()

    def close(self) -> None:
        self.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


class DiskResultCache:
    """Result cache persisted to one sqlite file between processes.

    The schema is a single ``results`` table keyed by ``(fingerprint,
    pickled canonical key)``, with per-row ``size`` and ``last_used``
    bookkeeping columns (files written by older versions are migrated in
    place).  Mid-run degradation is best-effort: an existing file that
    cannot be read as sqlite is recreated (the cache is a cache — losing
    it costs re-mining, not correctness), a row whose value fails to
    unpickle is deleted and reported as a miss, and operational errors
    during ``put`` are swallowed.  An *unopenable path* at construction
    (nonexistent directory, no permission) raises instead: a persistence
    config typo must not silently disable the tier the caller asked for.

    Parameters
    ----------
    path:
        The sqlite file.
    max_bytes:
        Cap on the summed pickled-value bytes.  Exceeding it on ``put``
        evicts least-recently-*used* rows (``get`` refreshes a row's
        ``last_used``) until back under; ``None`` leaves the file
        unbounded.  One oversized value is still stored — the cap then
        keeps everything else out, mirroring the hub's lease budget.
    ttl_seconds:
        Rows not served within this window expire: lazily on the access
        that finds them stale, and in bulk on every ``put``.  ``None``
        disables expiry.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        #: Rows deleted by the size cap / by TTL expiry (this process).
        self.evictions = 0
        self.expirations = 0
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        try:
            self._conn = self._open()
        except sqlite3.Error:
            if not os.path.exists(self.path):
                # The file could not even be created — a bad path, not a
                # bad cache.  Corruption tolerance must not mask it.
                raise
            # Corrupt or not sqlite at all: recreate from scratch.
            os.unlink(self.path)
            self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        # One connection shared across threads, serialized by our lock —
        # the serve coordinator thread uses a cache built on the main
        # thread, which sqlite's default per-thread check would reject.
        conn = sqlite3.connect(self.path, check_same_thread=False)
        conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " fingerprint TEXT NOT NULL,"
            " ckey BLOB NOT NULL,"
            " value BLOB NOT NULL,"
            " PRIMARY KEY (fingerprint, ckey))"
        )
        # In-place migration of pre-eviction files: add the bookkeeping
        # columns and backfill them so old rows are evictable too.
        columns = {row[1] for row in conn.execute("PRAGMA table_info(results)")}
        if "size" not in columns:
            conn.execute(
                "ALTER TABLE results ADD COLUMN size INTEGER NOT NULL DEFAULT 0"
            )
            conn.execute("UPDATE results SET size = LENGTH(value)")
        if "last_used" not in columns:
            conn.execute(
                "ALTER TABLE results ADD COLUMN last_used REAL NOT NULL DEFAULT 0"
            )
            conn.execute("UPDATE results SET last_used = ?", (_now(),))
        conn.commit()
        return conn

    @staticmethod
    def _split(key: Hashable) -> tuple[str, bytes]:
        fingerprint = _key_fingerprint(key) or ""
        return fingerprint, pickle.dumps(key, protocol=_PICKLE_PROTOCOL)

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        with self._lock:
            if self._conn is None:
                _DISK_MISSES.inc()
                return None
            fingerprint, ckey = self._split(key)
            now = _now()
            try:
                row = self._conn.execute(
                    "SELECT value, last_used FROM results"
                    " WHERE fingerprint = ? AND ckey = ?",
                    (fingerprint, ckey),
                ).fetchone()
            except sqlite3.Error:
                _DISK_MISSES.inc()
                return None
            if row is None:
                _DISK_MISSES.inc()
                return None
            if (
                self.ttl_seconds is not None
                and now - row[1] > self.ttl_seconds
            ):
                # Stale by TTL: lazily expired on the access that saw it.
                self._delete(fingerprint, ckey)
                self.expirations += 1
                _DISK_EXPIRATIONS.inc()
                _DISK_MISSES.inc()
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                # Undecodable value (truncated write, version skew): drop it.
                self._delete(fingerprint, ckey)
                _DISK_MISSES.inc()
                return None
            _DISK_HITS.inc()
            if self.max_bytes is not None or self.ttl_seconds is not None:
                # The recency stamp only matters when something reads it
                # (LRU eviction / TTL); an unbounded cache keeps its hit
                # path a pure SELECT instead of a write transaction.
                try:
                    self._conn.execute(
                        "UPDATE results SET last_used = ?"
                        " WHERE fingerprint = ? AND ckey = ?",
                        (now, fingerprint, ckey),
                    )
                    self._conn.commit()
                except sqlite3.Error:
                    pass
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            if self._conn is None:
                return
            fingerprint, ckey = self._split(key)
            blob = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (fingerprint, ckey, value, size, last_used)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (fingerprint, ckey, blob, len(blob), _now()),
                )
                self._conn.commit()
                self._enforce_bounds(keep=(fingerprint, ckey))
            except sqlite3.Error:
                pass

    def _enforce_bounds(self, keep: tuple[str, bytes]) -> None:
        """Expire TTL-stale rows, then evict LRU rows over ``max_bytes``.

        The just-written row is exempt from the size sweep (an oversized
        single entry is stored rather than thrashed), matching the
        lease budget's in-flight exemption.
        """
        now = _now()
        if self.ttl_seconds is not None:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE last_used < ?"
                " AND NOT (fingerprint = ? AND ckey = ?)",
                (now - self.ttl_seconds, *keep),
            )
            self.expirations += max(cursor.rowcount, 0)
            _DISK_EXPIRATIONS.inc(max(cursor.rowcount, 0))
        if self.max_bytes is None:
            self._conn.commit()
            return
        while True:
            total = self._conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM results"
            ).fetchone()[0]
            if total <= self.max_bytes:
                break
            victim = self._conn.execute(
                "SELECT fingerprint, ckey FROM results"
                " WHERE NOT (fingerprint = ? AND ckey = ?)"
                " ORDER BY last_used ASC LIMIT 1",
                keep,
            ).fetchone()
            if victim is None:
                break
            self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ? AND ckey = ?",
                tuple(victim),
            )
            self.evictions += 1
            _DISK_EVICTIONS.inc()
        self._conn.commit()

    @coordinator_only
    def purge_fingerprint(self, fingerprint: str) -> int:
        with self._lock:
            if self._conn is None:
                return 0
            try:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                )
                self._conn.commit()
                return cursor.rowcount
            except sqlite3.Error:
                return 0

    @coordinator_only
    def take_fingerprint(self, fingerprint: str) -> list[tuple]:
        """Remove and return ``(key, value)`` for every row under
        ``fingerprint`` (see :meth:`ResultCache.take_fingerprint`).

        Keys are recovered from the pickled ``ckey`` blobs.  Rows whose
        key or value no longer unpickles (truncated write, version skew)
        are deleted but not returned — for those the take degrades to a
        purge, matching this tier's corruption-tolerance contract.
        """
        with self._lock:
            if self._conn is None:
                return []
            try:
                rows = self._conn.execute(
                    "SELECT ckey, value FROM results WHERE fingerprint = ?",
                    (fingerprint,),
                ).fetchall()
                self._conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                )
                self._conn.commit()
            except sqlite3.Error:
                return []
            taken = []
            for ckey_blob, value_blob in rows:
                try:
                    taken.append((pickle.loads(ckey_blob), pickle.loads(value_blob)))
                except Exception:
                    continue
            return taken

    def _delete(self, fingerprint: str, ckey: bytes) -> None:
        try:
            self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ? AND ckey = ?",
                (fingerprint, ckey),
            )
            self._conn.commit()
        except sqlite3.Error:
            pass

    def total_bytes(self) -> int:
        """Summed pickled-value bytes currently stored."""
        with self._lock:
            if self._conn is None:
                return 0
            try:
                return int(
                    self._conn.execute(
                        "SELECT COALESCE(SUM(size), 0) FROM results"
                    ).fetchone()[0]
                )
            except sqlite3.Error:
                return 0

    def clear(self) -> None:
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute("DELETE FROM results")
                self._conn.commit()
            except sqlite3.Error:
                pass

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __len__(self) -> int:
        """Rows ``get`` would still serve — TTL-expired rows are not
        counted, even before the lazy expiry physically deletes them,
        so ``len(cache)`` and the hit rate agree."""
        with self._lock:
            if self._conn is None:
                return 0
            try:
                if self.ttl_seconds is not None:
                    return int(
                        self._conn.execute(
                            "SELECT COUNT(*) FROM results WHERE last_used >= ?",
                            (_now() - self.ttl_seconds,),
                        ).fetchone()[0]
                    )
                return int(
                    self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
                )
            except sqlite3.Error:
                return 0

    def __contains__(self, key: Hashable) -> bool:
        """Whether ``get(key)`` would hit.  A row past its TTL reports
        ``False`` (``get`` would refuse to serve it); the row itself is
        left for the lazy/bulk expiry paths — introspection must not
        mutate."""
        with self._lock:
            if self._conn is None:
                return False
            fingerprint, ckey = self._split(key)
            try:
                row = self._conn.execute(
                    "SELECT last_used FROM results"
                    " WHERE fingerprint = ? AND ckey = ?",
                    (fingerprint, ckey),
                ).fetchone()
            except sqlite3.Error:
                return False
            if row is None:
                return False
            if (
                self.ttl_seconds is not None
                and _now() - row[0] > self.ttl_seconds
            ):
                return False
            return True


class TieredResultCache:
    """Memory LRU in front of a disk tier.

    ``get`` consults memory first and promotes disk hits; ``put``,
    ``purge_fingerprint`` and ``clear`` apply to both tiers, so delta
    invalidation reaches persisted entries too.
    """

    def __init__(self, memory: ResultCache, disk: DiskResultCache) -> None:
        self.memory = memory
        self.disk = disk

    def get(self, key: Hashable):
        value = self.memory.get(key)
        if value is not None:
            return value
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)
        return value

    def put(self, key: Hashable, value) -> None:
        self.memory.put(key, value)
        self.disk.put(key, value)

    @coordinator_only
    def purge_fingerprint(self, fingerprint: str) -> int:
        purged = self.memory.purge_fingerprint(fingerprint)
        return purged + self.disk.purge_fingerprint(fingerprint)

    @coordinator_only
    def take_fingerprint(self, fingerprint: str) -> list[tuple]:
        """Remove and return the fingerprint's entries from both tiers.

        Deduplicated by key — a memory hit is also persisted on disk,
        and counting it twice would double both the migration work and
        the migrated/purged stats.  The memory tier's copy wins (it is
        never older than the disk row it was promoted from).
        """
        taken = dict(self.disk.take_fingerprint(fingerprint))
        taken.update(self.memory.take_fingerprint(fingerprint))
        return list(taken.items())

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()

    def close(self) -> None:
        self.memory.close()
        self.disk.close()

    def __contains__(self, key: Hashable) -> bool:
        return key in self.memory or key in self.disk
