"""LRU result cache for the mining engine.

Keys are ``(store fingerprint, request canonical key)`` tuples — see
:meth:`CompactStore.fingerprint` and :meth:`MineRequest.canonical_key` —
so a hit is only possible when both the data and the (resolved) query
parameters are identical, and an engine rebuilt over modified data can
never serve stale results.  Values are whole
:class:`~repro.core.results.MiningResult` objects, returned by
reference: treat cached results as immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache"]


class ResultCache:
    """A plain LRU mapping.  Hit/miss accounting lives in
    :class:`~repro.engine.engine.EngineStats`, which also sees the
    in-batch duplicates this cache never receives.

    ``maxsize=0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op) — the engine exposes that as ``cache_size=0``.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable):
        """The cached value, refreshed to most-recent, or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            return None
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value) -> None:
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
