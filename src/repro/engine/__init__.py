"""repro.engine — the long-lived mining session layer.

One :class:`MiningEngine` per network: the compact store is built and
fingerprinted once, the shared-memory export and worker fleet are set up
once (lazily), and an arbitrary stream of :class:`MineRequest` queries —
``engine.mine(request)`` or batched ``engine.sweep([...])`` — is served
over them with an LRU result cache.  The one-shot entry points
(:func:`repro.core.miner.mine_top_k`,
:class:`~repro.parallel.ParallelGRMiner`) remain for single queries;
anything that asks twice should hold an engine.
"""

from .cache import ResultCache
from .engine import EngineStats, MiningEngine
from .request import MineRequest

__all__ = ["EngineStats", "MineRequest", "MiningEngine", "ResultCache"]
