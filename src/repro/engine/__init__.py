"""repro.engine — the long-lived mining session layer.

One :class:`MiningEngine` per network: the compact store is built and
fingerprinted once, the shared-memory export and worker fleet are set up
once (lazily), and an arbitrary stream of :class:`MineRequest` queries —
``engine.mine(request)`` or batched ``engine.sweep([...])`` — is served
over them with an LRU result cache.  The one-shot entry points
(:func:`repro.core.miner.mine_top_k`,
:class:`~repro.parallel.ParallelGRMiner`) remain for single queries;
anything that asks twice should hold an engine.

One :class:`EngineHub` per *process*: many named (and mutable —
``hub.append_edges``) networks served through one shared worker fleet,
per-network leases evicted LRU-style under a memory budget, and a
result cache that can persist to disk between processes
(:class:`DiskResultCache` / :class:`TieredResultCache`).
"""

from .cache import DiskResultCache, ResultCache, TieredResultCache
from .delta import MigrationReport, migrate_fingerprint
from .engine import EngineStats, MiningEngine, PreparedQuery
from .hub import EngineHub
from .request import MineRequest

__all__ = [
    "DiskResultCache",
    "EngineHub",
    "EngineStats",
    "MigrationReport",
    "MineRequest",
    "MiningEngine",
    "PreparedQuery",
    "ResultCache",
    "TieredResultCache",
    "migrate_fingerprint",
]
