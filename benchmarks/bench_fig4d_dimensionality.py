"""E7 — Fig. 4d: runtime vs search-space dimensionality.

Paper setting: include the first l node attributes (l = 2..6), giving
dimensionality 2l; all other parameters at defaults.  Expected shape:
all algorithms grow with dimensionality, but GRMiner(k)/GRMiner grow
much slower than BL1/BL2 — more RHS attributes mean more room for
minNhp pruning (Theorem 3).
"""

import pytest

from repro.bench.harness import algorithm_factories

from conftest import DIMENSIONALITY_ORDER, FIG4_DEFAULTS

ELLS = (2, 4, 6)
ALGORITHMS = algorithm_factories()


@pytest.mark.parametrize("num_attrs", ELLS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig4d(benchmark, pokec_bench, algorithm, num_attrs):
    attrs = DIMENSIONALITY_ORDER[:num_attrs]
    factory = ALGORITHMS[algorithm]

    def run():
        return factory(pokec_bench, node_attributes=attrs, **FIG4_DEFAULTS).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dimensionality"] = 2 * num_attrs
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined


def test_fig4d_shape(benchmark, pokec_bench, out_dir):
    from repro.bench.harness import format_series, run_series

    def sweep():
        rows = []
        for num_attrs in ELLS:
            series = run_series(
                pokec_bench,
                "node_attributes",
                [DIMENSIONALITY_ORDER[:num_attrs]],
                FIG4_DEFAULTS,
            )
            row = series[0]
            row["node_attributes"] = f"dims={2 * num_attrs}"
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(rows, title="Fig. 4d — time (s) vs dimensionality")
    (out_dir / "fig4d.txt").write_text(text + "\n")
    print("\n" + text)

    # Both families grow with dimensionality ...
    assert rows[-1]["BL1 (s)"] > rows[0]["BL1 (s)"]
    # ... but the baselines grow faster than GRMiner (absolute gap at 12 dims).
    assert rows[-1]["GRMiner(k) (s)"] < rows[-1]["BL1 (s)"]
    assert rows[-1]["GRMiner(k) (s)"] < rows[-1]["BL2 (s)"]
