"""E2 — Table IIa: top GRs by nhp vs conf on the (synthetic) Pokec data.

Paper parameters: minSupp = 0.1%, minNhp = minConf = 50%, k = 300.
The regenerated side-by-side table is written to
``benchmarks/out/table2a.txt``; the benchmark times the GRMiner(k) run
that produces the nhp column.
"""

import pytest

from repro.analysis.summary import format_table2
from repro.core.baselines import ConfidenceMiner
from repro.core.miner import GRMiner

from conftest import write_artifact

PARAMS = dict(min_support=0.001, min_score=0.5, k=300)


@pytest.fixture(scope="module")
def results(pokec_table):
    nhp = GRMiner(pokec_table, **PARAMS).mine()
    conf = ConfidenceMiner(pokec_table, **PARAMS).mine()
    return nhp, conf


def test_table2a_regeneration(benchmark, pokec_table, results, out_dir):
    """Regenerate Table IIa and time the nhp-ranked mining run."""
    nhp, conf = results

    result = benchmark.pedantic(
        lambda: GRMiner(pokec_table, **PARAMS).mine(), rounds=1, iterations=1
    )
    benchmark.extra_info["nhp_grs"] = len(result)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined

    table = format_table2(
        nhp, conf, rows=5, title="Table IIa — synthetic Pokec (paper params)"
    )
    write_artifact(out_dir, "table2a.txt", table)
    print("\n" + table)

    # Shape assertions mirroring the paper's reading of Table IIa.
    schema = pokec_table.schema
    assert all(not m.gr.is_trivial(schema) for m in nhp.top(5))
    assert sum(m.gr.is_trivial(schema) for m in conf.top(5)) >= 3


def test_table2a_conf_ranking(benchmark, pokec_table):
    """Time the confidence-ranked side for comparison."""
    result = benchmark.pedantic(
        lambda: ConfidenceMiner(pokec_table, **PARAMS).mine(), rounds=1, iterations=1
    )
    assert len(result) > 0
