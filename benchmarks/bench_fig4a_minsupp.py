"""E4 — Fig. 4a: runtime vs minSupp for the four algorithms.

Paper setting: the 8-dimensional Pokec search space (Age, Region,
Education, Looking-For on both sides), absolute minSupp swept over
[2, 10000], other parameters at their defaults (minNhp 50%, k 100).

Every (algorithm, minSupp) pair is one pytest-benchmark row, so the
benchmark table *is* the figure's data series.  The expected shape
(paper): BL1/BL2 explode as minSupp shrinks while GRMiner(k)/GRMiner
stay comparatively flat thanks to minNhp pruning.
"""

import pytest

from repro.bench.harness import algorithm_factories

from conftest import FIG4_ATTRIBUTES, FIG4_DEFAULTS

MIN_SUPPORTS = (2, 10, 50, 500, 5000)
ALGORITHMS = algorithm_factories()


@pytest.mark.parametrize("min_support", MIN_SUPPORTS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig4a(benchmark, pokec_bench, algorithm, min_support):
    params = dict(FIG4_DEFAULTS, min_support=min_support)
    factory = ALGORITHMS[algorithm]

    def run():
        return factory(pokec_bench, node_attributes=FIG4_ATTRIBUTES, **params).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined
    benchmark.extra_info["grs_found"] = len(result)


def test_fig4a_shape(benchmark, pokec_bench, out_dir):
    """The figure's qualitative claim at the smallest minSupp."""
    from repro.bench.harness import format_series, run_series

    rows = benchmark.pedantic(
        lambda: run_series(
            pokec_bench,
            "min_support",
            (2, 50, 5000),
            dict(FIG4_DEFAULTS, node_attributes=FIG4_ATTRIBUTES),
        ),
        rounds=1,
        iterations=1,
    )
    text = format_series(rows, title="Fig. 4a — time (s) vs minSupp (absolute)")
    (out_dir / "fig4a.txt").write_text(text + "\n")
    print("\n" + text)

    smallest = rows[0]
    assert smallest["GRMiner(k) (s)"] < smallest["BL2 (s)"]
    assert smallest["GRMiner (s)"] < smallest["BL1 (s)"]
    # GRMiner's runtime grows far slower than the baselines' as minSupp drops.
    gr_growth = rows[0]["GRMiner(k) (s)"] / max(rows[-1]["GRMiner(k) (s)"], 1e-9)
    bl1_growth = rows[0]["BL1 (s)"] / max(rows[-1]["BL1 (s)"], 1e-9)
    assert bl1_growth > gr_growth
