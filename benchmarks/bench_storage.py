"""E10 — the Section IV-A storage claim: compact model vs single table.

``compact = |V|(#AttrV+2) + |E|(#AttrE+1) + |V|#AttrV`` must beat
``single = |E|(2·#AttrV + #AttrE)`` whenever nodes have several
attributes and average degree exceeds ~1 — and the gap must widen with
density.  Also times the construction of both representations.
"""

import pytest

from repro.data.edgetable import EdgeTable
from repro.data.store import CompactStore
from repro.datasets import synthetic_pokec


@pytest.fixture(scope="module")
def networks():
    return {
        "sparse": synthetic_pokec(num_sources=4000, num_edges=12_000, seed=1),
        "medium": synthetic_pokec(num_sources=4000, num_edges=40_000, seed=1),
        "dense": synthetic_pokec(num_sources=4000, num_edges=120_000, seed=1),
    }


def test_storage_ratio_grows_with_density(benchmark, networks, out_dir):
    lines = ["E10 — storage cells: compact model vs single table"]
    ratios = []

    def measure():
        for name, network in networks.items():
            store = CompactStore(network)
            compact = store.size_cells()
            single = store.single_table_size_cells()
            ratios.append(single / compact)
            lines.append(
                f"{name:7s} |V|={network.num_nodes:6d} |E|={network.num_edges:6d}  "
                f"compact={compact:9d}  single={single:9d}  "
                f"ratio={single / compact:5.2f}x"
            )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "\n".join(lines)
    (out_dir / "storage.txt").write_text(text + "\n")
    print("\n" + text)

    assert ratios[-1] > ratios[0]  # density widens the gap
    assert ratios[-1] > 1.5  # the dense case clearly favours the compact model


@pytest.mark.parametrize("representation", ["compact", "single_table"])
def test_construction_time(benchmark, networks, representation):
    network = networks["medium"]
    if representation == "compact":
        benchmark(lambda: CompactStore(network))
    else:
        benchmark(lambda: EdgeTable(network))
