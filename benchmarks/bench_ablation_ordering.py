"""A1 — ablation: dynamic RHS ordering (Eqn. 8) on vs off.

With the static τ order, the Remark 2 failure mode forces the miner to
keep descending through RIGHT subtrees it cannot prove safe to prune
(any remaining ``Hʳ₂`` token blocks the cut), so it examines more GRs.
The output is identical either way — the ordering buys efficiency, not
correctness (our conservative pruning rule keeps the static variant
exact as well).
"""

import pytest

from repro.core.miner import GRMiner

from conftest import FIG4_ATTRIBUTES, FIG4_DEFAULTS


@pytest.mark.parametrize("dynamic", [True, False], ids=["dynamic", "static"])
def test_ordering_runtime(benchmark, pokec_bench, dynamic):
    def run():
        return GRMiner(
            pokec_bench,
            node_attributes=FIG4_ATTRIBUTES,
            dynamic_rhs_ordering=dynamic,
            **FIG4_DEFAULTS,
        ).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined
    benchmark.extra_info["pruned_by_nhp"] = result.stats.pruned_by_nhp


def test_ordering_ablation_shape(benchmark, pokec_bench, out_dir):
    def both():
        dynamic = GRMiner(
            pokec_bench, node_attributes=FIG4_ATTRIBUTES, **FIG4_DEFAULTS
        ).mine()
        static = GRMiner(
            pokec_bench,
            node_attributes=FIG4_ATTRIBUTES,
            dynamic_rhs_ordering=False,
            **FIG4_DEFAULTS,
        ).mine()
        return dynamic, static

    dynamic, static = benchmark.pedantic(both, rounds=1, iterations=1)

    lines = [
        "A1 — dynamic RHS ordering ablation (GRs examined)",
        f"dynamic (Eqn. 8): {dynamic.stats.grs_examined}",
        f"static  (Eqn. 7): {static.stats.grs_examined}",
    ]
    text = "\n".join(lines)
    (out_dir / "ablation_ordering.txt").write_text(text + "\n")
    print("\n" + text)

    # Same output, less work with the dynamic order.
    assert [str(m.gr) for m in dynamic] == [str(m.gr) for m in static]
    assert dynamic.stats.grs_examined <= static.stats.grs_examined
