"""Shared datasets and helpers for the benchmark suite.

All benches run on fixed-seed synthetic datasets (DESIGN.md §3).  The
Pokec-style network is scaled to laptop size; the DBLP-style network is
at the paper's original scale.  Generated artifacts (the Table II
texts, the Fig. 4 series) are written to ``benchmarks/out/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import synthetic_dblp, synthetic_pokec

#: The four node attributes the paper uses for the Fig. 4 sweeps
#: ("the four node attributes with largest domain sizes"), dims = 8.
FIG4_ATTRIBUTES = ("Age", "Region", "Education", "Looking-For")
#: Attribute order for the Fig. 4d dimensionality sweep (l = 2..6).
DIMENSIONALITY_ORDER = (
    "Age",
    "Region",
    "Education",
    "Looking-For",
    "Gender",
    "Marital",
)
#: Fig. 4 default parameters (Section VI-D): absolute minSupp 50,
#: minNhp 50%, k = 100.
FIG4_DEFAULTS = dict(min_support=50, min_score=0.5, k=100)

OUT_DIR = Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def pokec_bench():
    """Scaled Pokec-style workload for the runtime comparisons."""
    return synthetic_pokec(
        num_sources=4000, num_edges=40_000, num_regions=24, seed=20160516
    )


@pytest.fixture(scope="session")
def pokec_table():
    """Larger sample for the Table IIa interestingness study."""
    return synthetic_pokec(num_sources=6000, num_edges=60_000, seed=20160516)


@pytest.fixture(scope="session")
def dblp_bench():
    """DBLP-style network at the paper's scale (28.7k authors)."""
    return synthetic_dblp(seed=20160517)


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/series under benchmarks/out/."""
    (out_dir / name).write_text(text + "\n")
