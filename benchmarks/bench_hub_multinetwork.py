#!/usr/bin/env python
"""Hub bench: interleaved multi-network traffic, deltas, disk-cache warmth.

A service process holds many networks and answers a mixed query stream;
this bench measures what :class:`repro.engine.EngineHub` amortizes over
that shape and verifies exactness on every row.  Run as a script (pytest
does not collect it):

    PYTHONPATH=src python benchmarks/bench_hub_multinetwork.py [--quick]

``--quick`` shrinks the datasets and grid to a CI-sized smoke run.  The
table goes to stdout and ``benchmarks/out/hub_multinetwork.txt``; the
machine-readable rows and summary go to ``benchmarks/out/BENCH_hub.json``
(the CI artifact).

Three phases:

* **interleaved** — an A/B/A/B… query stream over two registered
  networks through one hub (one fleet, per-network leases) vs cold
  one-shot miners per query; per-query latency recorded on both sides,
  results verified equal.
* **delta** — an ``append_edges`` batch lands on network A mid-stream;
  the re-mined post-delta answers are verified against fresh miners on
  the mutated network, and network B's untouched queries must still hit
  the cache.
* **restart** — the hub is closed and a new one opened on the same
  ``--disk-cache`` file; the whole warm query stream must be answered
  with zero mining calls (cache-hit counters asserted), timing the
  disk-tier hit path.
"""

from __future__ import annotations

import argparse
import os
import time
from itertools import product
from pathlib import Path

import numpy as np

from repro.bench.harness import format_series
from repro.bench.history import add_history_arguments, record_bench_run
from repro.core.miner import mine_top_k
from repro.datasets import synthetic_dblp, synthetic_pokec
from repro.engine import EngineHub, MineRequest

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "hub_multinetwork.txt"
JSON_PATH = OUT_DIR / "BENCH_hub.json"


def _networks(quick: bool) -> dict:
    if quick:
        return {
            "pokec": synthetic_pokec(
                num_sources=800, num_edges=8_000, num_regions=16, seed=20160516
            ),
            "dblp": synthetic_dblp(num_authors=600, num_links=4_000, seed=20160516),
        }
    return {
        "pokec": synthetic_pokec(num_sources=3000, num_edges=30_000, seed=20160516),
        "dblp": synthetic_dblp(num_authors=2000, num_links=15_000, seed=20160516),
    }


def _grid(quick: bool) -> list[dict]:
    if quick:
        ks = (20, 40)
        nhps = (0.5,)
    else:
        ks = (10, 25, 50)
        nhps = (0.4, 0.6)
    return [dict(k=k, min_support=20, min_nhp=nhp) for k, nhp in product(ks, nhps)]


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _stream(networks: dict, grid: list[dict]) -> list[tuple[str, dict]]:
    """The interleaved query order: networks alternate per grid point."""
    return [(name, combo) for combo in grid for name in networks]


def _delta(network, count: int, seed: int = 20160516):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, network.num_nodes, count)
    dst = rng.integers(0, network.num_nodes, count)
    edge_codes = {
        name: rng.integers(
            1, network.schema.edge_attribute(name).domain_size + 1, count
        )
        for name in network.schema.edge_attribute_names
    }
    return src, dst, edge_codes


def run(quick: bool, workers: int, disk_cache: Path) -> tuple[str, dict]:
    networks = _networks(quick)
    grid = _grid(quick)
    stream = _stream(networks, grid)
    mismatches = 0
    rows = []

    # ---- cold side: a fresh one-shot miner per query -------------------
    cold_results: dict[tuple[str, int], object] = {}
    cold_total = 0.0
    for i, (name, combo) in enumerate(stream):
        start = time.perf_counter()
        result = mine_top_k(networks[name], workers=workers, **combo)
        elapsed = time.perf_counter() - start
        cold_total += elapsed
        cold_results[(name, i)] = result
        rows.append({"network": name, **combo, "cold (s)": elapsed})

    # ---- hub side: one fleet, interleaved traffic ----------------------
    hub_total = 0.0
    delta_summary: dict = {}
    with EngineHub(workers=workers, disk_cache=disk_cache) as hub:
        for name, network in networks.items():
            hub.register(name, network)
        for i, (name, combo) in enumerate(stream):
            request = MineRequest.create(workers=workers, **combo)
            start = time.perf_counter()
            result = hub.mine(name, request)
            elapsed = time.perf_counter() - start
            hub_total += elapsed
            row = rows[i]
            row["hub (s)"] = elapsed
            row["speedup"] = row["cold (s)"] / elapsed if elapsed else float("inf")
            equal = _signature(result) == _signature(cold_results[(name, i)])
            row["=="] = "yes" if equal else "NO"
            mismatches += not equal

        # ---- delta phase: mutate pokec, keep dblp warm -----------------
        target = "pokec"
        delta_start = time.perf_counter()
        hub.append_edges(target, *_delta(networks[target], 500))
        delta_apply_s = time.perf_counter() - delta_start
        combo = grid[0]
        start = time.perf_counter()
        post = hub.mine(target, MineRequest.create(workers=workers, **combo))
        post_delta_s = time.perf_counter() - start
        fresh = mine_top_k(networks[target], workers=workers, **combo)
        post_equal = _signature(post) == _signature(fresh)
        mismatches += not post_equal
        before_hits = hub.stats("dblp").cache_hits
        hub.mine("dblp", MineRequest.create(workers=workers, **grid[0]))
        dblp_kept_cache = hub.stats("dblp").cache_hits == before_hits + 1
        mismatches += not dblp_kept_cache
        delta_summary = {
            "apply_s": delta_apply_s,
            "post_delta_mine_s": post_delta_s,
            "post_delta_equal": post_equal,
            "untouched_network_kept_cache": dblp_kept_cache,
            "invalidations": hub.stats(target).invalidations,
            "purged_entries": hub.stats(target).purged_entries,
        }
        hub_stats = hub.aggregate_stats()

    # ---- restart phase: a new hub over the same disk cache -------------
    warm_total = 0.0
    for row in rows:
        # Uniform columns keep format_series rendering every row; the
        # mutated network's entries were invalidated, so its rows have
        # no warm measurement.
        row["warm (s)"] = "-"
    with EngineHub(workers=workers, disk_cache=disk_cache) as hub:
        for name, network in networks.items():
            hub.register(name, network)
        start = time.perf_counter()
        for i, (name, combo) in enumerate(stream):
            # pokec was mutated after its stream queries ran, so only the
            # untouched network's entries survived the invalidation.
            if name == target:
                continue
            query_start = time.perf_counter()
            hub.mine(name, MineRequest.create(workers=workers, **combo))
            rows[i]["warm (s)"] = time.perf_counter() - query_start
        warm_total = time.perf_counter() - start
        restart_stats = {
            name: hub.stats(name).as_dict() for name in networks
        }
        warm_misses = sum(s["cache_misses"] for s in restart_stats.values())
        mismatches += warm_misses  # every warm query must be a disk hit

    summary = {
        "workers": workers,
        "queries": len(stream),
        "cold_total_s": cold_total,
        "hub_total_s": hub_total,
        "per_query_cold_s": cold_total / len(stream),
        "per_query_hub_s": hub_total / len(stream),
        "amortized_speedup": cold_total / hub_total if hub_total else 0.0,
        "warm_restart_total_s": warm_total,
        "warm_restart_misses": warm_misses,
        "delta": delta_summary,
        "hub_stats": hub_stats,
        "restart_stats": restart_stats,
        "mismatches": mismatches,
    }
    payload = {
        "config": {
            "quick": quick,
            "cpus": os.cpu_count(),
            "networks": {
                name: {"edges": network.num_edges}
                for name, network in networks.items()
            },
            "grid": grid,
        },
        "rows": rows,
        "summary": summary,
    }
    title = (
        f"hub x{workers}: {len(stream)} interleaved queries over "
        f"{len(networks)} networks — cold {cold_total:.3f}s vs hub "
        f"{hub_total:.3f}s ({summary['amortized_speedup']:.2f}x, "
        f"pool_spawns={hub_stats['pool_spawns']}, "
        f"warm restart {warm_total:.3f}s / {warm_misses} misses)"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, small grid"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="shared fleet size"
    )
    parser.add_argument(
        "--disk-cache",
        default=None,
        help="sqlite path for the persistent tier (default: out/hub_cache.sqlite, "
        "recreated per run)",
    )
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    disk_cache = Path(args.disk_cache) if args.disk_cache else OUT_DIR / "hub_cache.sqlite"
    if disk_cache.exists():
        disk_cache.unlink()  # measure a genuinely cold first pass
    table, payload = run(args.quick, max(1, args.workers), disk_cache)
    print(table)
    TXT_PATH.write_text(table + "\n")
    history = record_bench_run(
        "hub",
        payload,
        OUT_DIR,
        headline={
            "amortized_speedup": {
                "value": payload["summary"]["amortized_speedup"],
                "better": "higher",
            },
        },
        config={"quick": args.quick, "workers": max(1, args.workers)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_hub.json'}")
    print(f"appended {history}")
    summary = payload["summary"]
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: {summary['mismatches']} verification failure(s)")
        return 1
    if summary["amortized_speedup"] <= 1.0:
        print(
            "WARNING: no amortization win "
            f"({summary['amortized_speedup']:.2f}x) — expected on 1-CPU boxes"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
