"""A2 — ablation: the value of each pushed constraint.

Cumulative comparison on the same workload:

1. support pruning only (= BL2's strategy);
2. + minNhp pruning (Theorem 3) — plain GRMiner;
3. + dynamic top-k threshold upgrade — GRMiner(k).

The examined-GR counts quantify each pushdown's contribution, the
paper's core efficiency claim.
"""

import pytest

from repro.core.miner import GRMiner

from conftest import FIG4_ATTRIBUTES

PARAMS = dict(min_support=50, min_score=0.5, k=100)

VARIANTS = {
    "support-only": dict(push_score_pruning=False, push_topk=False),
    "+nhp-pruning": dict(push_score_pruning=True, push_topk=False),
    "+topk-upgrade": dict(push_score_pruning=True, push_topk=True),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_pushdown_runtime(benchmark, pokec_bench, variant):
    flags = VARIANTS[variant]

    def run():
        return GRMiner(
            pokec_bench, node_attributes=FIG4_ATTRIBUTES, **PARAMS, **flags
        ).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined


def test_pushdown_monotone_improvement(benchmark, pokec_bench, out_dir):
    def sweep():
        efforts = {}
        for variant, flags in VARIANTS.items():
            result = GRMiner(
                pokec_bench, node_attributes=FIG4_ATTRIBUTES, **PARAMS, **flags
            ).mine()
            efforts[variant] = result.stats.grs_examined
        return efforts

    efforts = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A2 — constraint pushdown ablation (GRs examined)"]
    lines += [f"{name:14s}: {count}" for name, count in efforts.items()]
    text = "\n".join(lines)
    (out_dir / "ablation_pruning.txt").write_text(text + "\n")
    print("\n" + text)

    assert efforts["+nhp-pruning"] < efforts["support-only"]
    assert efforts["+topk-upgrade"] <= efforts["+nhp-pruning"]
