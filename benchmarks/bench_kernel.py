#!/usr/bin/env python
"""Kernel-tier bench: reference vs vector (vs numba) single-shard mine().

Times the scalar reference loop against the arena-batched vector kernel
(and the numba tier when numba is importable) on one serial miner, with
every tier's answer verified GR-for-GR — scores, metrics *and* effort
counters — against the reference oracle.  Run as a script (pytest does
not collect it):

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick] [--profile]

Timing method: the tiers are interleaved (one round = one run of each
tier) with the garbage collector disabled, and the per-tier best of
``--repeats`` rounds is kept — CPU time (``time.process_time``) drives
the speedup gate so shared-runner scheduling noise does not.  The first
vector round runs on a warm miner skeleton (the arena build is a
store-derived one-off, shared with the column caches).

``--profile`` additionally cProfiles one vector-tier branch walk via
:func:`repro.bench.harness.profile_mining` and writes the raw profile
to ``benchmarks/out/kernel_profile.pstats``.

Gate: the vector tier must be >= 1.5x the reference on CPU time and
every tier's result must verify.  The pure-numpy tier measures ~1.8-2x
on this workload (each RIGHT node still pays fixed numpy dispatch and
Python bookkeeping over a mean domain slice of ~40 values); the 3-5x
headline needs the numba tier, which is gated on numba being installed
— when it is absent the bench records ``"numba": "unavailable"`` in
``benchmarks/out/BENCH_kernel.json`` (the CI artifact) instead of
failing.
"""

from __future__ import annotations

import argparse
import gc
import os
import time
from pathlib import Path

from repro.bench.harness import format_series, profile_mining
from repro.bench.history import add_history_arguments, record_bench_run
from repro.core.kernels import NUMBA_AVAILABLE
from repro.core.miner import GRMiner, MinerConfig
from repro.datasets import synthetic_pokec

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "kernel.txt"
PSTATS_PATH = OUT_DIR / "kernel_profile.pstats"

#: CPU-time speedup the vector tier must clear over the reference.
MIN_SPEEDUP = 1.5


def _network(quick: bool):
    if quick:
        return synthetic_pokec(
            num_sources=3000, num_edges=50_000, num_regions=187, seed=7
        )
    return synthetic_pokec(num_sources=6000, num_edges=100_000, num_regions=187, seed=7)


def _params(quick: bool) -> dict:
    return dict(k=20, min_support=5, min_score=0.6)


def _signature(result):
    return [
        (
            str(m.gr),
            round(m.score, 12),
            m.metrics.support_count,
            m.metrics.lw_count,
            m.metrics.homophily_count,
        )
        for m in result
    ]


def _counters(stats):
    return {
        "grs_examined": stats.grs_examined,
        "pruned_by_support": stats.pruned_by_support,
        "pruned_by_nhp": stats.pruned_by_nhp,
        "candidates": stats.candidates,
        "lw_nodes": stats.lw_nodes,
        "pruned_by_generality": stats.pruned_by_generality,
    }


def run(quick: bool, repeats: int) -> tuple[str, dict]:
    network = _network(quick)
    params = _params(quick)
    tiers = ["reference", "vector"] + (["numba"] if NUMBA_AVAILABLE else [])
    miners = {
        tier: GRMiner(network, config=MinerConfig(kernel=tier, **params))
        for tier in tiers
    }

    best_cpu = {tier: float("inf") for tier in tiers}
    best_wall = {tier: float("inf") for tier in tiers}
    signatures: dict[str, list] = {}
    counters: dict[str, dict] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            for tier in tiers:
                miner = miners[tier].rearm(miners[tier].config)
                cpu0, wall0 = time.process_time(), time.perf_counter()
                result = miner.mine()
                cpu, wall = time.process_time() - cpu0, time.perf_counter() - wall0
                best_cpu[tier] = min(best_cpu[tier], cpu)
                best_wall[tier] = min(best_wall[tier], wall)
                signatures[tier] = _signature(result)
                counters[tier] = _counters(result.stats)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()

    mismatches = [
        tier
        for tier in tiers
        if tier != "reference"
        and (
            signatures[tier] != signatures["reference"]
            or counters[tier] != counters["reference"]
        )
    ]
    rows = [
        {
            "kernel": tier,
            "cpu (s)": best_cpu[tier],
            "wall (s)": best_wall[tier],
            "speedup": best_cpu["reference"] / best_cpu[tier],
            "grs": len(signatures[tier]),
            "verified": "oracle" if tier == "reference" else
            ("yes" if tier not in mismatches else "NO"),
        }
        for tier in tiers
    ]
    speedup = best_cpu["reference"] / best_cpu["vector"]
    payload = {
        "config": {
            "quick": quick,
            "repeats": repeats,
            "cpus": os.cpu_count(),
            "edges": network.num_edges,
            **{k: v for k, v in params.items()},
        },
        "rows": rows,
        "numba": (
            {"speedup": best_cpu["reference"] / best_cpu["numba"]}
            if NUMBA_AVAILABLE
            else "unavailable"
        ),
        "summary": {
            "vector_speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "mismatches": mismatches,
        },
    }
    title = (
        f"kernel tiers, best of {repeats} interleaved rounds "
        f"({'quick' if quick else 'full'} config, {network.num_edges} edges): "
        f"vector {speedup:.2f}x reference on CPU time"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: smaller network"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="interleaved timing rounds per tier"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also cProfile one vector-tier branch walk "
        f"(raw profile to {PSTATS_PATH.name})",
    )
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    table, payload = run(args.quick, max(1, args.repeats))
    print(table)
    TXT_PATH.write_text(table + "\n")
    history = record_bench_run(
        "kernel",
        payload,
        OUT_DIR,
        headline={
            "vector_speedup": {
                "value": payload["summary"]["vector_speedup"],
                "better": "higher",
            },
        },
        config={"quick": args.quick, "repeats": max(1, args.repeats)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_kernel.json'}")
    print(f"appended {history}")

    if args.profile:
        miner = GRMiner(
            _network(args.quick),
            config=MinerConfig(kernel="vector", **_params(args.quick)),
        )
        _, text = profile_mining(miner, out_path=PSTATS_PATH, top=25)
        print(text)
        print(f"wrote {PSTATS_PATH}")

    summary = payload["summary"]
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: tiers {summary['mismatches']} diverge from reference")
        return 1
    if summary["vector_speedup"] < MIN_SPEEDUP:
        print(
            f"NO KERNEL WIN: vector tier {summary['vector_speedup']:.2f}x "
            f"< required {MIN_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
