#!/usr/bin/env python
"""Scaling bench: sharded ParallelGRMiner vs the serial GRMiner(k).

Times the serial miner against the multi-process miner at several worker
counts on the synthetic Pokec- and DBLP-style workloads, checks that
every run returns identical GRs, and records the speedups.  Run as a
script (pytest does not collect it — the sweep needs a CLI):

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]

``--quick`` shrinks the datasets and worker grid to a CI-sized smoke
run.  The table is also written to ``benchmarks/out/parallel_scaling.txt``.

Speedup depends on the hardware: the shards genuinely run concurrently,
so the headline number tracks the machine's usable core count (on a
single-core container the pool's fork/export overhead makes the
parallel rows *slower* — the bench records whatever is true).
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro.bench.harness import format_series
from repro.core.miner import GRMiner
from repro.datasets import synthetic_dblp, synthetic_pokec
from repro.parallel import ParallelGRMiner

OUT_PATH = Path(__file__).resolve().parent / "out" / "parallel_scaling.txt"

#: Fig. 4 default thresholds (Section VI-D).
PARAMS = dict(min_support=50, min_score=0.5, k=100)


def _configs(quick: bool):
    if quick:
        yield "pokec-15k", synthetic_pokec(
            num_sources=1500, num_edges=15_000, num_regions=24, seed=20160516
        )
        return
    yield "pokec-40k", synthetic_pokec(
        num_sources=4000, num_edges=40_000, num_regions=24, seed=20160516
    )
    # The largest synthetic Pokec config (the Table IIa sample size).
    yield "pokec-60k", synthetic_pokec(
        num_sources=6000, num_edges=60_000, seed=20160516
    )
    yield "dblp-67k", synthetic_dblp(seed=20160517)


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _consistency(serial_sig, parallel_sig) -> str:
    """Serial GRMiner(k) vs the exact parallel result.

    ``yes`` — identical lists.  ``sub`` — the serial heuristic returned
    an order-preserving subsequence (it may legitimately hold fewer than
    k entries, DESIGN.md §5.5).  ``NO`` — a genuine divergence.
    """
    if serial_sig == parallel_sig:
        return "yes"
    position = -1
    for item in serial_sig:
        try:
            position = parallel_sig.index(item, position + 1)
        except ValueError:
            return "NO"
    return "sub"


def run(quick: bool, workers: tuple[int, ...], repeats: int) -> str:
    rows = []
    for name, network in _configs(quick):
        serial_best = float("inf")
        serial_result = None
        for _ in range(repeats):
            start = time.perf_counter()
            serial_result = GRMiner(network, **PARAMS).mine()
            serial_best = min(serial_best, time.perf_counter() - start)
        row = {
            "config": name,
            "|E|": network.num_edges,
            "grs": len(serial_result),
            "serial (s)": serial_best,
        }
        for count in workers:
            best = float("inf")
            par_result = None
            for _ in range(repeats):
                start = time.perf_counter()
                par_result = ParallelGRMiner(network, workers=count, **PARAMS).mine()
                best = min(best, time.perf_counter() - start)
            row[f"par×{count} (s)"] = best
            row[f"par×{count} speedup"] = serial_best / best if best else 0.0
            row[f"par×{count} =="] = _consistency(
                _signature(serial_result), _signature(par_result)
            )
        rows.append(row)
    title = (
        f"Parallel scaling — GRMiner(k) vs ParallelGRMiner "
        f"(minSupp=50, minNhp=0.5, k=100; cpus={os.cpu_count()})"
    )
    return format_series(rows, title=title)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, workers 1-2"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="worker counts to sweep (default: 1 2 4, or 1 2 with --quick)",
    )
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    workers = tuple(args.workers) if args.workers else ((1, 2) if args.quick else (1, 2, 4))
    table = run(args.quick, workers, max(1, args.repeats))
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n")
    print(f"\nwrote {OUT_PATH}")
    if any("NO" in line for line in table.splitlines()):
        print("RESULT MISMATCH between serial and parallel miners")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
