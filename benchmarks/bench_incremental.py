#!/usr/bin/env python
"""Incremental re-mining bench: append-edge deltas, migrated vs cold.

One engine serves a top-k query, then absorbs a sequence of small
concentrated append-edge deltas (all new edges leave one source node, so
only that node's first-level partitions are touched).  Run as a script
(pytest does not collect it):

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

Per delta round, the bench records both sides of the migrate-vs-cold
comparison:

* **incremental** — ``engine.append_edges`` migrates the cached entry
  (untouched branches carried over, touched branches re-mined through
  the ordinary branch miner) and the next query is a cache hit whose
  ``branches_mined`` / ``branches_total`` params say exactly how much
  mining the delta cost.
* **cold** — a fresh engine over the same post-delta network mines the
  same query from scratch (every branch).

Acceptance: every answer is GR-for-GR equal to a fresh one-shot miner,
at least one entry migrated, and each migrated round mined *strictly
fewer* branches than the cold baseline.  The table goes to stdout and
``benchmarks/out/incremental.txt``; the machine-readable payload to
``benchmarks/out/BENCH_incremental.json`` (the CI artifact).
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import format_series
from repro.bench.history import add_history_arguments, record_bench_run
from repro.datasets import synthetic_pokec
from repro.engine import MineRequest, MiningEngine
from repro.parallel import ParallelGRMiner

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "incremental.txt"


def _network(quick: bool):
    if quick:
        return synthetic_pokec(
            num_sources=600, num_edges=6_000, num_regions=12, seed=20160516
        )
    return synthetic_pokec(num_sources=2500, num_edges=25_000, seed=20160516)


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _concentrated_delta(network, count: int, round_index: int):
    """``count`` new edges all leaving one (existing) source node."""
    rng = np.random.default_rng(1000 + round_index)
    node = int(network.src[int(rng.integers(0, network.num_edges))])
    src = np.full(count, node, dtype=np.int64)
    dst = rng.integers(0, network.num_nodes, count)
    edge_codes = {
        name: rng.integers(
            1, network.schema.edge_attribute(name).domain_size + 1, count
        )
        for name in network.schema.edge_attribute_names
    }
    return src, dst, edge_codes


def run(quick: bool, workers: int) -> tuple[str, dict]:
    network = _network(quick)
    request = MineRequest.create(
        k=10, min_support=20 if quick else 40, min_nhp=0.0, workers=workers
    )
    rounds = 3 if quick else 5
    delta_size = 10

    rows = []
    mismatches = 0
    with MiningEngine(network, workers=workers) as engine:
        engine.mine(request)  # populate the cache
        for i in range(rounds):
            migrated_before = engine.stats.migrated_entries
            src, dst, edge_codes = _concentrated_delta(network, delta_size, i)

            t0 = time.perf_counter()
            engine.append_edges(src, dst, edge_codes)
            incremental = engine.mine(request)  # cache hit when migrated
            incremental_s = time.perf_counter() - t0
            migrated = engine.stats.migrated_entries - migrated_before

            t0 = time.perf_counter()
            with MiningEngine(network, workers=workers) as cold_engine:
                cold = cold_engine.mine(request)
            cold_s = time.perf_counter() - t0

            reference = _signature(
                ParallelGRMiner(
                    network,
                    workers=workers,
                    k=request.k,
                    min_support=request.min_support,
                    min_score=request.min_nhp,
                ).mine()
            )
            mismatches += _signature(incremental) != reference
            mismatches += _signature(cold) != reference

            rows.append(
                {
                    "round": i,
                    "delta edges": delta_size,
                    "outcome": "migrated" if migrated else "purged",
                    "branches mined (incremental)": incremental.params.get(
                        "branches_mined", "-"
                    ),
                    "branches mined (cold)": incremental.params.get(
                        "branches_total", "-"
                    ),
                    "incremental (s)": incremental_s,
                    "cold (s)": cold_s,
                }
            )
        stats = engine.stats

    migrated_rounds = [r for r in rows if r["outcome"] == "migrated"]
    summary = {
        "workers": workers,
        "rounds": rounds,
        "delta_size": delta_size,
        "migrated_entries": stats.migrated_entries,
        "purged_entries": stats.purged_entries,
        "migration_fallbacks": stats.migration_fallbacks,
        "branches_mined_incremental": sum(
            r["branches mined (incremental)"] for r in migrated_rounds
        ),
        "branches_mined_cold": sum(
            r["branches mined (cold)"] for r in migrated_rounds
        ),
        "incremental_elapsed_s": sum(r["incremental (s)"] for r in rows),
        "cold_elapsed_s": sum(r["cold (s)"] for r in rows),
        "mismatches": mismatches,
    }
    payload = {
        "config": {
            "quick": quick,
            "cpus": os.cpu_count(),
            "edges": network.num_edges,
        },
        "rows": rows,
        "summary": summary,
    }
    title = (
        f"incremental x{workers}: {len(migrated_rounds)}/{rounds} deltas "
        f"migrated, {summary['branches_mined_incremental']} branches mined "
        f"vs {summary['branches_mined_cold']} cold; "
        f"{summary['incremental_elapsed_s']:.2f}s incremental vs "
        f"{summary['cold_elapsed_s']:.2f}s cold"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, few rounds"
    )
    parser.add_argument("--workers", type=int, default=2, help="shared fleet size")
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    table, payload = run(args.quick, max(1, args.workers))
    print(table)
    TXT_PATH.write_text(table + "\n")
    history = record_bench_run(
        "incremental",
        payload,
        OUT_DIR,
        headline={
            "incremental_elapsed_s": {
                "value": payload["summary"]["incremental_elapsed_s"],
                "better": "lower",
            },
            "cold_elapsed_s": {
                "value": payload["summary"]["cold_elapsed_s"],
                "better": "lower",
            },
        },
        config={"quick": args.quick, "workers": max(1, args.workers)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_incremental.json'}")
    print(f"appended {history}")
    summary = payload["summary"]
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: {summary['mismatches']} verification failure(s)")
        return 1
    if summary["migrated_entries"] == 0:
        print("NO MIGRATIONS: every delta fell back to the purge path")
        return 1
    if summary["branches_mined_incremental"] >= summary["branches_mined_cold"]:
        print(
            "NO INCREMENTAL WIN: migrated deltas mined "
            f"{summary['branches_mined_incremental']} branches vs "
            f"{summary['branches_mined_cold']} cold"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
