"""E3 + E11 — Table IIb: top GRs by nhp vs conf on the DBLP-scale data.

Paper parameters: minSupp = 0.1% (absolute 67), minNhp = minConf = 50%,
k = 20.  The paper reports the whole DBLP run takes <= 0.483s in C++;
the benchmark records our Python runtime for EXPERIMENTS.md (E11).
Output table: ``benchmarks/out/table2b.txt``.
"""

import pytest

from repro.analysis.summary import format_table2
from repro.core.baselines import ConfidenceMiner
from repro.core.miner import GRMiner

from conftest import write_artifact

PARAMS = dict(min_support=0.001, min_score=0.5, k=20)


@pytest.fixture(scope="module")
def results(dblp_bench):
    nhp = GRMiner(dblp_bench, **PARAMS).mine()
    conf = ConfidenceMiner(dblp_bench, **PARAMS).mine()
    return nhp, conf


def test_table2b_regeneration(benchmark, dblp_bench, results, out_dir):
    nhp, conf = results

    result = benchmark.pedantic(
        lambda: GRMiner(dblp_bench, **PARAMS).mine(), rounds=3, iterations=1
    )
    benchmark.extra_info["nhp_grs"] = len(result)

    table = format_table2(
        nhp, conf, rows=5, title="Table IIb — synthetic DBLP (paper params)"
    )
    write_artifact(out_dir, "table2b.txt", table)
    print("\n" + table)

    # The D2-style interdisciplinary tie must be in the nhp column and
    # absent from the conf column (conf ≈ 7% << 50%).
    nhp_strings = [str(m.gr) for m in nhp]
    assert any(
        "Area:DB" in s and "Area:DM" in s and "Strength:often" in s
        for s in nhp_strings
    )
    conf_strings = [str(m.gr) for m in conf]
    assert not any(
        "Area:DB" in s and "Area:DM" in s and "often" in s for s in conf_strings
    )


def test_dblp_runtime_seconds_scale(benchmark, dblp_bench):
    """E11: the full DBLP mining run stays interactive (paper: <= 0.483s C++)."""
    result = benchmark.pedantic(
        lambda: GRMiner(dblp_bench, **PARAMS).mine(), rounds=3, iterations=1
    )
    # Interpreted-Python budget: well under a minute; typically < 2s.
    assert result.stats.runtime_seconds < 30
