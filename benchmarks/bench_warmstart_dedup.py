#!/usr/bin/env python
"""Warm-start + single-flight bench: cold sweeps vs planner-assisted.

Two experiments on one network, run as a script (pytest does not
collect it):

    PYTHONPATH=src python benchmarks/bench_warmstart_dedup.py [--quick]

* **Warm-start** — a dominance-related sweep (one strict seed point,
  many relaxed dependents) runs twice through ``repro.serve.Scheduler``:
  once with warm-start off (every point cold) and once with the
  admission planner on (seed mined first at boosted priority, its
  k-th-best score seeding the dependents' threshold buses).  Recorded
  per dependent: ``grs_examined``, ``candidates``, runtime.  The
  acceptance check is *strictly fewer* summed ``grs_examined`` on the
  warm side, with every answer verified GR-for-GR against fresh
  one-shot miners.
* **Single-flight dedup** — N identical concurrent jobs through the
  scheduler (cacheless hub, so dedup is the only collapse mechanism)
  vs the same N queries mined sequentially on a cacheless blocking
  hub.  The check: exactly one cache-missed execution on the scheduler
  side (engine ``cache_misses == 1``) with all N answers equal.

``--quick`` shrinks the dataset for a CI-sized smoke run.  The table
goes to stdout and ``benchmarks/out/warmstart_dedup.txt``; the
machine-readable payload to ``benchmarks/out/BENCH_warmstart.json``
(the CI artifact).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time
from pathlib import Path

from repro.bench.harness import format_series
from repro.bench.history import add_history_arguments, record_bench_run
from repro.datasets import synthetic_pokec
from repro.engine import EngineHub, MineRequest
from repro.parallel import ParallelGRMiner
from repro.serve import Scheduler

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "warmstart_dedup.txt"


def _network(quick: bool):
    if quick:
        return synthetic_pokec(
            num_sources=600, num_edges=6_000, num_regions=12, seed=20160516
        )
    return synthetic_pokec(num_sources=2500, num_edges=25_000, seed=20160516)


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _warmstart_grid(quick: bool, workers: int) -> list[MineRequest]:
    """One dominating seed plus relaxed dependents (generality off, so
    both threshold axes relax — the hardest-working floor)."""
    k = 10
    seed = MineRequest.create(
        k=k, min_support=40, min_nhp=0.5, workers=workers, apply_generality=False
    )
    supports = (5, 10, 20) if quick else (5, 10, 15, 20, 25, 30)
    dependents = [
        MineRequest.create(
            k=k, min_support=s, min_nhp=0.0, workers=workers,
            apply_generality=False,
        )
        for s in supports
    ]
    return [seed] + dependents


def _run_sweep(network, requests, workers: int, warm_start: bool):
    async def scenario():
        with EngineHub(workers=workers, cache_size=0) as hub:
            hub.register("net", network)
            async with Scheduler(hub, warm_start=warm_start) as scheduler:
                t0 = time.perf_counter()
                jobs = scheduler.submit_sweep("net", requests)
                results = [await job for job in jobs]
                elapsed = time.perf_counter() - t0
                return results, [job.warm_floor for job in jobs], elapsed

    return asyncio.run(scenario())


def _run_dedup(network, request, n: int, workers: int):
    async def scenario():
        with EngineHub(workers=workers, cache_size=0) as hub:
            hub.register("net", network)
            async with Scheduler(hub) as scheduler:
                t0 = time.perf_counter()
                jobs = [scheduler.submit("net", request) for _ in range(n)]
                results = [await job for job in jobs]
                elapsed = time.perf_counter() - t0
                stats = hub.engine("net").stats
                return (
                    results,
                    elapsed,
                    stats.cache_misses,
                    sum(job.deduped for job in jobs),
                )

    return asyncio.run(scenario())


def run(quick: bool, workers: int) -> tuple[str, dict]:
    network = _network(quick)
    requests = _warmstart_grid(quick, workers)
    fresh = [
        _signature(
            ParallelGRMiner(
                network,
                workers=workers,
                k=r.k,
                min_support=r.min_support,
                min_score=r.min_nhp,
                **dict(r.options),
            ).mine()
        )
        for r in requests
    ]

    cold_results, _, cold_elapsed = _run_sweep(network, requests, workers, False)
    warm_results, floors, warm_elapsed = _run_sweep(network, requests, workers, True)
    mismatches = sum(
        _signature(c) != f or _signature(w) != f
        for c, w, f in zip(cold_results, warm_results, fresh)
    )

    rows = []
    for r, cold, warm, floor in zip(requests, cold_results, warm_results, floors):
        rows.append(
            {
                "point": f"supp={r.min_support} nhp={r.min_nhp}",
                "role": "seed" if floor is None and r is requests[0] else (
                    "dependent" if floor is not None else "cold"
                ),
                "floor": floor if floor is not None else "-",
                "cold grs_examined": cold.stats.grs_examined,
                "warm grs_examined": warm.stats.grs_examined,
                "cold candidates": cold.stats.candidates,
                "warm candidates": warm.stats.candidates,
                "cold runtime (s)": cold.stats.runtime_seconds,
                "warm runtime (s)": warm.stats.runtime_seconds,
            }
        )
    dependent_cold = sum(r.stats.grs_examined for r in cold_results[1:])
    dependent_warm = sum(r.stats.grs_examined for r in warm_results[1:])

    # ---- dedup: N identical concurrent jobs vs N sequential mines ----
    n_jobs = 4 if quick else 8
    dup_request = MineRequest.create(
        k=10, min_support=10, min_nhp=0.3, workers=workers
    )
    dup_results, dedup_elapsed, dedup_misses, followers = _run_dedup(
        network, dup_request, n_jobs, workers
    )
    with EngineHub(workers=workers, cache_size=0) as hub:
        hub.register("net", network)
        t0 = time.perf_counter()
        sequential = [hub.mine("net", dup_request) for _ in range(n_jobs)]
        sequential_elapsed = time.perf_counter() - t0
    dup_reference = _signature(sequential[0])
    mismatches += sum(_signature(r) != dup_reference for r in dup_results)

    summary = {
        "workers": workers,
        "grid_points": len(requests),
        "warm_started_dependents": sum(f is not None for f in floors),
        "dependent_grs_examined_cold": dependent_cold,
        "dependent_grs_examined_warm": dependent_warm,
        "grs_examined_saved": dependent_cold - dependent_warm,
        "sweep_elapsed_cold_s": cold_elapsed,
        "sweep_elapsed_warm_s": warm_elapsed,
        "dedup_jobs": n_jobs,
        "dedup_mining_executions": dedup_misses,
        "dedup_followers": followers,
        "dedup_concurrent_elapsed_s": dedup_elapsed,
        "dedup_sequential_elapsed_s": sequential_elapsed,
        "mismatches": mismatches,
    }
    payload = {
        "config": {
            "quick": quick,
            "cpus": os.cpu_count(),
            "edges": network.num_edges,
        },
        "rows": rows,
        "summary": summary,
    }
    title = (
        f"warm-start x{workers}: dependents examined {dependent_cold} GRs cold "
        f"vs {dependent_warm} warm "
        f"({summary['grs_examined_saved']} saved); dedup: {n_jobs} identical "
        f"jobs -> {dedup_misses} execution(s), "
        f"{dedup_elapsed:.2f}s concurrent vs {sequential_elapsed:.2f}s sequential"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, small grid"
    )
    parser.add_argument("--workers", type=int, default=2, help="shared fleet size")
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    table, payload = run(args.quick, max(1, args.workers))
    print(table)
    TXT_PATH.write_text(table + "\n")
    history = record_bench_run(
        "warmstart",
        payload,
        OUT_DIR,
        headline={
            "grs_examined_saved": {
                "value": payload["summary"]["grs_examined_saved"],
                "better": "higher",
            },
            "dedup_concurrent_elapsed_s": {
                "value": payload["summary"]["dedup_concurrent_elapsed_s"],
                "better": "lower",
            },
        },
        config={"quick": args.quick, "workers": max(1, args.workers)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_warmstart.json'}")
    print(f"appended {history}")
    summary = payload["summary"]
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: {summary['mismatches']} verification failure(s)")
        return 1
    if summary["warm_started_dependents"] == 0:
        print("NO WARM STARTS: the seed never floored a dependent")
        return 1
    if summary["dependent_grs_examined_warm"] >= summary["dependent_grs_examined_cold"]:
        print(
            "NO PRUNING WIN: warm-started dependents examined "
            f"{summary['dependent_grs_examined_warm']} GRs vs "
            f"{summary['dependent_grs_examined_cold']} cold"
        )
        return 1
    if summary["dedup_mining_executions"] != 1:
        print(
            f"DEDUP MISS: {summary['dedup_mining_executions']} executions for "
            f"{summary['dedup_jobs']} identical concurrent jobs"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
