"""E6 — Fig. 4c: GRMiner(k) runtime over the (k, minNhp) grid.

Paper reading: pruning is effective as long as *one* of the two
constraints is tight — a small k upgrades minNhp to a high value by
itself, so the surface is low along both axes and peaks at
(large k, small minNhp).
"""

import pytest

from repro.core.miner import GRMiner

from conftest import FIG4_ATTRIBUTES

KS = (1, 100, 10_000)
MIN_NHPS = (0.0, 0.5, 0.9)


@pytest.mark.parametrize("min_nhp", MIN_NHPS)
@pytest.mark.parametrize("k", KS)
def test_fig4c(benchmark, pokec_bench, k, min_nhp):
    def run():
        return GRMiner(
            pokec_bench,
            min_support=50,
            min_score=min_nhp,
            k=k,
            node_attributes=FIG4_ATTRIBUTES,
        ).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined
    benchmark.extra_info["effective_pruning"] = result.stats.pruned_by_nhp


def test_fig4c_shape(benchmark, pokec_bench, out_dir):
    """Tightness of either constraint keeps the search effort low."""
    def effort(k, min_nhp):
        return GRMiner(
            pokec_bench,
            min_support=50,
            min_score=min_nhp,
            k=k,
            node_attributes=FIG4_ATTRIBUTES,
        ).mine().stats.grs_examined

    def grid():
        return (effort(10_000, 0.0), effort(1, 0.0), effort(10_000, 0.9), effort(1, 0.9))

    # (loose, k-tight, nhp-tight, both-tight) corners of the Fig. 4c surface.
    loose, small_k, high_nhp, both = benchmark.pedantic(grid, rounds=1, iterations=1)

    lines = [
        "Fig. 4c — GRs examined over the (k, minNhp) grid",
        f"k=10000, minNhp=0.0 : {loose}",
        f"k=1,     minNhp=0.0 : {small_k}",
        f"k=10000, minNhp=0.9 : {high_nhp}",
        f"k=1,     minNhp=0.9 : {both}",
    ]
    (out_dir / "fig4c.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    assert small_k < loose
    assert high_nhp < loose
    assert both <= min(small_k, high_nhp) * 1.1
