"""E5/A2 — Fig. 4b: runtime vs minNhp.

Paper reading: BL1/BL2 do not benefit from a larger minNhp (they prune
on support only); GRMiner(k)/GRMiner get faster as minNhp rises, and
GRMiner(k) additionally wins at small minNhp by upgrading the threshold
to the k-th best found.
"""

import pytest

from repro.bench.harness import algorithm_factories

from conftest import FIG4_ATTRIBUTES, FIG4_DEFAULTS

MIN_NHPS = (0.0, 0.25, 0.5, 0.75, 0.95)
ALGORITHMS = algorithm_factories()


@pytest.mark.parametrize("min_nhp", MIN_NHPS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig4b(benchmark, pokec_bench, algorithm, min_nhp):
    params = dict(FIG4_DEFAULTS, min_score=min_nhp)
    factory = ALGORITHMS[algorithm]

    def run():
        return factory(pokec_bench, node_attributes=FIG4_ATTRIBUTES, **params).mine()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["grs_examined"] = result.stats.grs_examined


def test_fig4b_shape(benchmark, pokec_bench, out_dir):
    from repro.bench.harness import format_series, run_series

    rows = benchmark.pedantic(
        lambda: run_series(
            pokec_bench,
            "min_score",
            (0.0, 0.5, 0.95),
            dict(FIG4_DEFAULTS, node_attributes=FIG4_ATTRIBUTES),
        ),
        rounds=1,
        iterations=1,
    )
    text = format_series(rows, title="Fig. 4b — time (s) vs minNhp")
    (out_dir / "fig4b.txt").write_text(text + "\n")
    print("\n" + text)

    # GRMiner speeds up with minNhp; the baselines stay flat (within noise).
    assert rows[-1]["GRMiner (s)"] < rows[0]["GRMiner (s)"]
    bl1_low, bl1_high = rows[0]["BL1 (s)"], rows[-1]["BL1 (s)"]
    assert abs(bl1_high - bl1_low) < 0.7 * max(bl1_low, bl1_high)
    # At a loose minNhp, the dynamic top-k upgrade gives GRMiner(k) the edge
    # in search effort (examined GRs), the paper's GRMiner(k)-vs-GRMiner gap.
    from repro.core.miner import GRMiner

    with_k = GRMiner(
        pokec_bench,
        node_attributes=FIG4_ATTRIBUTES,
        **dict(FIG4_DEFAULTS, min_score=0.0),
    ).mine()
    without_k = GRMiner(
        pokec_bench,
        node_attributes=FIG4_ATTRIBUTES,
        push_topk=False,
        **dict(FIG4_DEFAULTS, min_score=0.0),
    ).mine()
    assert with_k.stats.grs_examined < without_k.stats.grs_examined
