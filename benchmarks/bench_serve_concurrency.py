#!/usr/bin/env python
"""Serve bench: mixed-priority two-network traffic vs the blocking hub.

The serving scheduler's pitch is *latency shaping*, not raw throughput:
the same shard work is done either way, but priorities and fair
interleaving decide **who waits**.  This bench replays one mixed
workload both ways and measures exactly that.  Run as a script (pytest
does not collect it):

    PYTHONPATH=src python benchmarks/bench_serve_concurrency.py [--quick]

``--quick`` shrinks the datasets and grid to a CI-sized smoke run.  The
table goes to stdout and ``benchmarks/out/serve_concurrency.txt``; the
machine-readable rows and summary go to
``benchmarks/out/BENCH_serve.json`` (the CI artifact).

Workload: a **bulk** low-priority sweep (many grid points on network A)
is submitted first, then a stream of **urgent** high-priority single
queries on network B arrives behind it.

* **sequential baseline** — a blocking ``hub.mine()`` loop in submission
  order: every urgent query waits for the whole bulk backlog ahead of
  it.
* **served** — the same requests through ``repro.serve.Scheduler``:
  urgent shards jump the queue at every free fleet slot.

Recorded per class: p50/p95 completion latency (submit → result),
whether the urgent stream finished before the earlier-submitted bulk
did (the acceptance criterion), and a fairness view of per-network
shard service.  Every served result is verified GR-for-GR against the
baseline's answer for the same request.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from itertools import product
from pathlib import Path

from repro.bench.harness import format_series
from repro.datasets import synthetic_dblp, synthetic_pokec
from repro.engine import EngineHub, MineRequest
from repro.serve import Scheduler

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "serve_concurrency.txt"
JSON_PATH = OUT_DIR / "BENCH_serve.json"


def _networks(quick: bool) -> dict:
    if quick:
        return {
            "pokec": synthetic_pokec(
                num_sources=800, num_edges=8_000, num_regions=16, seed=20160516
            ),
            "dblp": synthetic_dblp(num_authors=600, num_links=4_000, seed=20160516),
        }
    return {
        "pokec": synthetic_pokec(num_sources=3000, num_edges=30_000, seed=20160516),
        "dblp": synthetic_dblp(num_authors=2000, num_links=15_000, seed=20160516),
    }


def _workload(quick: bool, workers: int):
    """(class, network, request) triples in submission order."""
    if quick:
        bulk_ks, bulk_nhps = (10, 20, 30, 40), (0.4, 0.5)
        urgent_specs = [(15, 0.5), (25, 0.45)]
    else:
        bulk_ks, bulk_nhps = (10, 20, 30, 40, 50), (0.35, 0.45, 0.55)
        urgent_specs = [(15, 0.5), (25, 0.45), (35, 0.55)]
    bulk = [
        ("bulk", "pokec", MineRequest.create(
            k=k, min_support=20, min_nhp=nhp, workers=workers))
        for k, nhp in product(bulk_ks, bulk_nhps)
    ]
    urgent = [
        ("urgent", "dblp", MineRequest.create(
            k=k, min_support=20, min_nhp=nhp, workers=workers))
        for k, nhp in urgent_specs
    ]
    return bulk + urgent  # urgent submitted last — it must overtake


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def _latency_summary(latencies: dict[str, list[float]]) -> dict:
    return {
        klass: {
            "n": len(values),
            "p50_s": _percentile(values, 0.50),
            "p95_s": _percentile(values, 0.95),
            "max_s": max(values) if values else 0.0,
        }
        for klass, values in latencies.items()
    }


def run(quick: bool, workers: int) -> tuple[str, dict]:
    networks = _networks(quick)
    stream = _workload(quick, workers)
    rows = [
        {"class": klass, "network": name, "k": request.k,
         "minNhp": request.min_nhp}
        for klass, name, request in stream
    ]
    mismatches = 0

    # ---- sequential baseline: blocking hub, submission order ----------
    baseline_sigs: list[list] = []
    seq_latency: dict[str, list[float]] = {"bulk": [], "urgent": []}
    with EngineHub(workers=workers) as hub:
        for name, network in networks.items():
            hub.register(name, network)
        t0 = time.perf_counter()
        for i, (klass, name, request) in enumerate(stream):
            result = hub.mine(name, request)
            completed = time.perf_counter() - t0  # latency since stream start
            baseline_sigs.append(_signature(result))
            seq_latency[klass].append(completed)
            rows[i]["seq latency (s)"] = completed
        seq_total = time.perf_counter() - t0

    # ---- served: one scheduler, urgent priority jumps the bulk --------
    async def _served():
        latency: dict[str, list[float]] = {"bulk": [], "urgent": []}
        with EngineHub(workers=workers) as hub:
            for name, network in networks.items():
                hub.register(name, network)
            async with Scheduler(hub) as scheduler:
                t0 = time.perf_counter()
                jobs = [
                    (i, klass, scheduler.submit(
                        name, request,
                        priority=10 if klass == "urgent" else 0,
                    ))
                    for i, (klass, name, request) in enumerate(stream)
                ]
                done_at: dict[int, float] = {}
                for i, klass, job in jobs:
                    await job
                    done_at[i] = (
                        job.finished_at - job.submitted_at
                    )
                served_total = time.perf_counter() - t0
                sigs = [
                    _signature(job.future.result()) for _, _, job in jobs
                ]
                for i, klass, job in jobs:
                    latency[klass].append(done_at[i])
                # Did every urgent job finish before the last bulk one?
                bulk_finish = max(
                    job.finished_at for _, klass, job in jobs if klass == "bulk"
                )
                urgent_finish = max(
                    job.finished_at for _, klass, job in jobs
                    if klass == "urgent"
                )
                overtook = urgent_finish < bulk_finish
                sched_stats = scheduler.stats()
        return latency, served_total, sigs, overtook, done_at, sched_stats

    served_latency, served_total, served_sigs, overtook, done_at, sched_stats = (
        asyncio.run(_served())
    )
    for i, (row, expected, got) in enumerate(zip(rows, baseline_sigs, served_sigs)):
        row["served latency (s)"] = done_at[i]
        equal = expected == got
        row["=="] = "yes" if equal else "NO"
        mismatches += not equal

    summary = {
        "workers": workers,
        "queries": len(stream),
        "bulk_queries": sum(1 for r in rows if r["class"] == "bulk"),
        "urgent_queries": sum(1 for r in rows if r["class"] == "urgent"),
        "sequential_total_s": seq_total,
        "served_total_s": served_total,
        "sequential_latency": _latency_summary(seq_latency),
        "served_latency": _latency_summary(served_latency),
        "urgent_finished_before_bulk": overtook,
        "urgent_p95_speedup": (
            _percentile(seq_latency["urgent"], 0.95)
            / _percentile(served_latency["urgent"], 0.95)
            if served_latency["urgent"] and _percentile(served_latency["urgent"], 0.95)
            else 0.0
        ),
        "scheduler": sched_stats,
        "mismatches": mismatches,
    }
    payload = {
        "config": {
            "quick": quick,
            "cpus": os.cpu_count(),
            "networks": {
                name: {"edges": network.num_edges}
                for name, network in networks.items()
            },
        },
        "rows": rows,
        "summary": summary,
    }
    title = (
        f"serve x{workers}: {summary['bulk_queries']} bulk + "
        f"{summary['urgent_queries']} urgent queries — urgent p95 "
        f"{summary['sequential_latency']['urgent']['p95_s']:.3f}s sequential vs "
        f"{summary['served_latency']['urgent']['p95_s']:.3f}s served "
        f"({summary['urgent_p95_speedup']:.1f}x; urgent overtook earlier bulk: "
        f"{'YES' if overtook else 'NO'})"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, small grid"
    )
    parser.add_argument("--workers", type=int, default=2, help="shared fleet size")
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    table, payload = run(args.quick, max(1, args.workers))
    print(table)
    TXT_PATH.write_text(table + "\n")
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {TXT_PATH}\nwrote {JSON_PATH}")
    summary = payload["summary"]
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: {summary['mismatches']} verification failure(s)")
        return 1
    if not summary["urgent_finished_before_bulk"]:
        print(
            "PRIORITY INVERSION: the high-priority stream did not overtake "
            "the earlier-submitted bulk sweep"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
