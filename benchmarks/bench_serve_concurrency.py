#!/usr/bin/env python
"""Serve bench: mixed-priority two-network traffic vs the blocking hub.

The serving scheduler's pitch is *latency shaping*, not raw throughput:
the same shard work is done either way, but priorities and fair
interleaving decide **who waits**.  This bench replays one mixed
workload both ways and measures exactly that.  Run as a script (pytest
does not collect it):

    PYTHONPATH=src python benchmarks/bench_serve_concurrency.py [--quick]

``--quick`` shrinks the datasets and grid to a CI-sized smoke run.  The
table goes to stdout and ``benchmarks/out/serve_concurrency.txt``; the
machine-readable rows and summary go to
``benchmarks/out/BENCH_serve.json`` (the CI artifact) and append a
history row to ``benchmarks/out/history.jsonl``.

The served phase runs **twice**: once with observability off
(``observe=False`` + a disabled metrics registry) and once with metrics
and tracing on, an HTTP facade attached, and a ``GET /metrics`` scrape
saved to ``benchmarks/out/metrics_scrape.prom``.  The bench asserts the
instrumented run's urgent p95 and total wall-clock stay within 5% (plus
a small absolute epsilon for timer noise) of the obs-disabled run — the
observability overhead gate.

Workload: a **bulk** low-priority sweep (many grid points on network A)
is submitted first, then a stream of **urgent** high-priority single
queries on network B arrives behind it.

* **sequential baseline** — a blocking ``hub.mine()`` loop in submission
  order: every urgent query waits for the whole bulk backlog ahead of
  it.
* **served** — the same requests through ``repro.serve.Scheduler``:
  urgent shards jump the queue at every free fleet slot.

Recorded per class: p50/p95 completion latency (submit → result),
whether the urgent stream finished before the earlier-submitted bulk
did (the acceptance criterion), and a fairness view of per-network
shard service.  Every served result is verified GR-for-GR against the
baseline's answer for the same request.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time
from itertools import product
from pathlib import Path

from repro.bench.harness import format_series
from repro.bench.history import add_history_arguments, record_bench_run
from repro.datasets import synthetic_dblp, synthetic_pokec
from repro.engine import EngineHub, MineRequest
from repro.obs import REGISTRY
from repro.serve import Scheduler, ServeHTTP

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "serve_concurrency.txt"
SCRAPE_PATH = OUT_DIR / "metrics_scrape.prom"

#: Overhead gate: instrumented run must stay within this fraction of
#: the obs-disabled run (plus an absolute epsilon for timer noise on
#: sub-second quick runs).
OVERHEAD_TOLERANCE = 0.05
OVERHEAD_EPSILON_S = 0.25


def _networks(quick: bool) -> dict:
    if quick:
        return {
            "pokec": synthetic_pokec(
                num_sources=800, num_edges=8_000, num_regions=16, seed=20160516
            ),
            "dblp": synthetic_dblp(num_authors=600, num_links=4_000, seed=20160516),
        }
    return {
        "pokec": synthetic_pokec(num_sources=3000, num_edges=30_000, seed=20160516),
        "dblp": synthetic_dblp(num_authors=2000, num_links=15_000, seed=20160516),
    }


def _workload(quick: bool, workers: int):
    """(class, network, request) triples in submission order."""
    if quick:
        bulk_ks, bulk_nhps = (10, 20, 30, 40), (0.4, 0.5)
        urgent_specs = [(15, 0.5), (25, 0.45)]
    else:
        bulk_ks, bulk_nhps = (10, 20, 30, 40, 50), (0.35, 0.45, 0.55)
        urgent_specs = [(15, 0.5), (25, 0.45), (35, 0.55)]
    bulk = [
        ("bulk", "pokec", MineRequest.create(
            k=k, min_support=20, min_nhp=nhp, workers=workers))
        for k, nhp in product(bulk_ks, bulk_nhps)
    ]
    urgent = [
        ("urgent", "dblp", MineRequest.create(
            k=k, min_support=20, min_nhp=nhp, workers=workers))
        for k, nhp in urgent_specs
    ]
    return bulk + urgent  # urgent submitted last — it must overtake


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def _latency_summary(latencies: dict[str, list[float]]) -> dict:
    return {
        klass: {
            "n": len(values),
            "p50_s": _percentile(values, 0.50),
            "p95_s": _percentile(values, 0.95),
            "max_s": max(values) if values else 0.0,
        }
        for klass, values in latencies.items()
    }


def _overhead_gate(
    off_p95: float, on_p95: float, off_total: float, on_total: float
) -> dict:
    """Compare the instrumented run against the obs-disabled one.

    ``within_tolerance`` is the bench's acceptance criterion: each
    instrumented number must not exceed its baseline by more than
    ``OVERHEAD_TOLERANCE`` (fractional) plus ``OVERHEAD_EPSILON_S``
    (absolute — quick-run numbers are fractions of a second, where
    scheduler jitter alone exceeds 5%).
    """

    def ok(off: float, on: float) -> bool:
        return on <= off * (1.0 + OVERHEAD_TOLERANCE) + OVERHEAD_EPSILON_S

    return {
        "disabled_urgent_p95_s": off_p95,
        "enabled_urgent_p95_s": on_p95,
        "disabled_total_s": off_total,
        "enabled_total_s": on_total,
        "urgent_p95_ratio": on_p95 / off_p95 if off_p95 else 1.0,
        "total_ratio": on_total / off_total if off_total else 1.0,
        "tolerance": OVERHEAD_TOLERANCE,
        "epsilon_s": OVERHEAD_EPSILON_S,
        "within_tolerance": ok(off_p95, on_p95) and ok(off_total, on_total),
    }


def run(quick: bool, workers: int) -> tuple[str, dict]:
    networks = _networks(quick)
    stream = _workload(quick, workers)
    rows = [
        {"class": klass, "network": name, "k": request.k,
         "minNhp": request.min_nhp}
        for klass, name, request in stream
    ]
    mismatches = 0

    # ---- sequential baseline: blocking hub, submission order ----------
    baseline_sigs: list[list] = []
    seq_latency: dict[str, list[float]] = {"bulk": [], "urgent": []}
    with EngineHub(workers=workers) as hub:
        for name, network in networks.items():
            hub.register(name, network)
        t0 = time.perf_counter()
        for i, (klass, name, request) in enumerate(stream):
            result = hub.mine(name, request)
            completed = time.perf_counter() - t0  # latency since stream start
            baseline_sigs.append(_signature(result))
            seq_latency[klass].append(completed)
            rows[i]["seq latency (s)"] = completed
        seq_total = time.perf_counter() - t0

    # ---- served: one scheduler, urgent priority jumps the bulk --------
    # Runs twice: observability off (the overhead baseline), then fully
    # instrumented with an HTTP facade attached and /metrics scraped.
    async def _served(observe: bool):
        REGISTRY.set_enabled(observe)
        latency: dict[str, list[float]] = {"bulk": [], "urgent": []}
        scrape = None
        with EngineHub(workers=workers) as hub:
            for name, network in networks.items():
                hub.register(name, network)
            async with Scheduler(hub, observe=observe) as scheduler:
                t0 = time.perf_counter()
                jobs = [
                    (i, klass, scheduler.submit(
                        name, request,
                        priority=10 if klass == "urgent" else 0,
                    ))
                    for i, (klass, name, request) in enumerate(stream)
                ]
                done_at: dict[int, float] = {}
                for i, klass, job in jobs:
                    await job
                    done_at[i] = (
                        job.finished_at - job.submitted_at
                    )
                served_total = time.perf_counter() - t0
                sigs = [
                    _signature(job.future.result()) for _, _, job in jobs
                ]
                for i, klass, job in jobs:
                    latency[klass].append(done_at[i])
                # Did every urgent job finish before the last bulk one?
                bulk_finish = max(
                    job.finished_at for _, klass, job in jobs if klass == "bulk"
                )
                urgent_finish = max(
                    job.finished_at for _, klass, job in jobs
                    if klass == "urgent"
                )
                overtook = urgent_finish < bulk_finish
                sched_stats = scheduler.stats()
                if observe:
                    scrape = await _scrape_metrics(scheduler)
        return latency, served_total, sigs, overtook, done_at, sched_stats, scrape

    async def _scrape_metrics(scheduler) -> str:
        # A real wire scrape, as a Prometheus agent would take it.
        async with ServeHTTP(scheduler, port=0) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
        return raw.split(b"\r\n\r\n", 1)[1].decode()

    off_latency, off_total, _, _, _, _, _ = asyncio.run(_served(observe=False))
    served_latency, served_total, served_sigs, overtook, done_at, sched_stats, scrape = (
        asyncio.run(_served(observe=True))
    )
    REGISTRY.set_enabled(True)
    SCRAPE_PATH.parent.mkdir(exist_ok=True)
    SCRAPE_PATH.write_text(scrape)
    for i, (row, expected, got) in enumerate(zip(rows, baseline_sigs, served_sigs)):
        row["served latency (s)"] = done_at[i]
        equal = expected == got
        row["=="] = "yes" if equal else "NO"
        mismatches += not equal

    summary = {
        "workers": workers,
        "queries": len(stream),
        "bulk_queries": sum(1 for r in rows if r["class"] == "bulk"),
        "urgent_queries": sum(1 for r in rows if r["class"] == "urgent"),
        "sequential_total_s": seq_total,
        "served_total_s": served_total,
        "sequential_latency": _latency_summary(seq_latency),
        "served_latency": _latency_summary(served_latency),
        "urgent_finished_before_bulk": overtook,
        "urgent_p95_speedup": (
            _percentile(seq_latency["urgent"], 0.95)
            / _percentile(served_latency["urgent"], 0.95)
            if served_latency["urgent"] and _percentile(served_latency["urgent"], 0.95)
            else 0.0
        ),
        "scheduler": sched_stats,
        "mismatches": mismatches,
        "obs_overhead": _overhead_gate(
            off_p95=_percentile(off_latency["urgent"], 0.95),
            on_p95=_percentile(served_latency["urgent"], 0.95),
            off_total=off_total,
            on_total=served_total,
        ),
    }
    payload = {
        "config": {
            "quick": quick,
            "cpus": os.cpu_count(),
            "networks": {
                name: {"edges": network.num_edges}
                for name, network in networks.items()
            },
        },
        "rows": rows,
        "summary": summary,
    }
    title = (
        f"serve x{workers}: {summary['bulk_queries']} bulk + "
        f"{summary['urgent_queries']} urgent queries — urgent p95 "
        f"{summary['sequential_latency']['urgent']['p95_s']:.3f}s sequential vs "
        f"{summary['served_latency']['urgent']['p95_s']:.3f}s served "
        f"({summary['urgent_p95_speedup']:.1f}x; urgent overtook earlier bulk: "
        f"{'YES' if overtook else 'NO'})"
    )
    return format_series(rows, title=title), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, small grid"
    )
    parser.add_argument("--workers", type=int, default=2, help="shared fleet size")
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    OUT_DIR.mkdir(exist_ok=True)
    table, payload = run(args.quick, max(1, args.workers))
    print(table)
    TXT_PATH.write_text(table + "\n")
    summary = payload["summary"]
    history = record_bench_run(
        "serve",
        payload,
        OUT_DIR,
        headline={
            "urgent_p95_s": {
                "value": summary["served_latency"]["urgent"]["p95_s"],
                "better": "lower",
            },
            "served_total_s": {"value": summary["served_total_s"], "better": "lower"},
            "urgent_p95_speedup": {
                "value": summary["urgent_p95_speedup"],
                "better": "higher",
            },
            "obs_total_ratio": {
                "value": summary["obs_overhead"]["total_ratio"],
                "better": "lower",
            },
        },
        config={"quick": args.quick, "workers": max(1, args.workers)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_serve.json'}")
    print(f"wrote {SCRAPE_PATH}\nappended {history}")
    if summary["mismatches"]:
        print(f"RESULT MISMATCH: {summary['mismatches']} verification failure(s)")
        return 1
    if not summary["urgent_finished_before_bulk"]:
        print(
            "PRIORITY INVERSION: the high-priority stream did not overtake "
            "the earlier-submitted bulk sweep"
        )
        return 1
    overhead = summary["obs_overhead"]
    if not overhead["within_tolerance"]:
        print(
            "OBSERVABILITY OVERHEAD: instrumented run exceeded the "
            f"obs-disabled baseline by more than {OVERHEAD_TOLERANCE:.0%} "
            f"(+{OVERHEAD_EPSILON_S}s): urgent p95 "
            f"{overhead['disabled_urgent_p95_s']:.3f}s -> "
            f"{overhead['enabled_urgent_p95_s']:.3f}s, total "
            f"{overhead['disabled_total_s']:.3f}s -> "
            f"{overhead['enabled_total_s']:.3f}s"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
