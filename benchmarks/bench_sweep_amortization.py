#!/usr/bin/env python
"""Amortization bench: one MiningEngine vs M independent mine_top_k calls.

A parameter sweep of M combos is the paper's own experimental shape
(Fig. 4 grids).  Run independently, every combo pays the full setup —
build the CompactStore, export shared memory, spawn a pool — while one
shared :class:`repro.engine.MiningEngine` pays it once.  This bench
times both sides on the same grid, verifies every engine result against
a fresh one-shot miner of the same parameters, and records the per-query
amortization.  Run as a script (pytest does not collect it):

    PYTHONPATH=src python benchmarks/bench_sweep_amortization.py [--quick]

``--quick`` shrinks the dataset and grid to a CI-sized smoke run.  The
table goes to stdout and ``benchmarks/out/sweep_amortization.txt``; the
machine-readable rows and summary go to ``benchmarks/out/BENCH_sweep.json``
(the CI artifact).

Two comparisons are reported:

* **serial** — ``mine_top_k(network, ...)`` per combo (rebuilds the
  store each call) vs the engine's serial path (store + column gathers +
  first-level partitions built once).
* **sharded** (``--workers N``) — ``mine_top_k(..., workers=N)`` per
  combo (export + pool spawn each call) vs the engine's persistent
  fleet, with the sweep dispatched as one interleaved batch.

The engine's result cache is disabled so every query is really mined.
"""

from __future__ import annotations

import argparse
import os
import time
from itertools import product
from pathlib import Path

from repro.bench.harness import format_series
from repro.bench.history import add_history_arguments, record_bench_run
from repro.core.miner import mine_top_k
from repro.datasets import synthetic_pokec
from repro.engine import MineRequest, MiningEngine

OUT_DIR = Path(__file__).resolve().parent / "out"
TXT_PATH = OUT_DIR / "sweep_amortization.txt"


def _grid(quick: bool) -> list[dict]:
    if quick:
        ks = (25, 50)
        nhps = (0.4, 0.6)
        supports = (30,)
    else:
        ks = (10, 25, 50, 100)
        nhps = (0.3, 0.5, 0.7)
        supports = (30, 50)
    return [
        dict(k=k, min_support=s, min_nhp=nhp)
        for k, s, nhp in product(ks, supports, nhps)
    ]


def _network(quick: bool):
    if quick:
        return synthetic_pokec(
            num_sources=1200, num_edges=12_000, num_regions=24, seed=20160516
        )
    return synthetic_pokec(num_sources=4000, num_edges=40_000, seed=20160516)


def _signature(result):
    return [(str(m.gr), round(m.score, 9)) for m in result]


def _run_side(network, grid, workers: int | None) -> tuple[list[dict], dict]:
    """Time cold per-combo calls vs one engine; verify result equality."""
    rows = []
    mismatches = 0

    cold_results = []
    cold_total = 0.0
    for combo in grid:
        start = time.perf_counter()
        result = mine_top_k(network, workers=workers, **combo)
        elapsed = time.perf_counter() - start
        cold_total += elapsed
        cold_results.append(result)
        rows.append({**combo, "cold (s)": elapsed})

    with MiningEngine(network, workers=workers, cache_size=0) as engine:
        requests = [
            MineRequest.create(workers=workers, **combo) for combo in grid
        ]
        # Per-query latency through the live engine.
        engine_total = 0.0
        for row, request, cold in zip(rows, requests, cold_results):
            start = time.perf_counter()
            result = engine.mine(request)
            elapsed = time.perf_counter() - start
            engine_total += elapsed
            row["engine (s)"] = elapsed
            row["amortized speedup"] = (
                row["cold (s)"] / elapsed if elapsed else float("inf")
            )
            equal = _signature(result) == _signature(cold)
            row["=="] = "yes" if equal else "NO"
            mismatches += not equal
        # The whole grid as one interleaved batch.
        start = time.perf_counter()
        batch = engine.sweep(requests)
        batch_total = time.perf_counter() - start
        for row, result, cold in zip(rows, batch, cold_results):
            if _signature(result) != _signature(cold):
                row["=="] = "NO"
                mismatches += 1
        stats = engine.stats.as_dict()

    summary = {
        "workers": workers,
        "combos": len(grid),
        "cold_total_s": cold_total,
        "engine_total_s": engine_total,
        "batch_total_s": batch_total,
        "per_query_cold_s": cold_total / len(grid),
        "per_query_engine_s": engine_total / len(grid),
        "amortized_speedup": cold_total / engine_total if engine_total else 0.0,
        "batch_speedup": cold_total / batch_total if batch_total else 0.0,
        "engine_stats": stats,
        "mismatches": mismatches,
    }
    return rows, summary


def run(quick: bool, workers: int) -> tuple[str, dict]:
    network = _network(quick)
    grid = _grid(quick)
    payload: dict = {
        "config": {
            "quick": quick,
            "edges": network.num_edges,
            "cpus": os.cpu_count(),
            "grid": grid,
        },
        "sides": {},
    }
    tables = []
    for label, side_workers in (("serial", None), (f"sharded x{workers}", workers)):
        rows, summary = _run_side(network, grid, side_workers)
        payload["sides"][label] = {"rows": rows, "summary": summary}
        title = (
            f"{label}: {summary['combos']} combos — cold {summary['cold_total_s']:.3f}s "
            f"vs engine {summary['engine_total_s']:.3f}s "
            f"(batched {summary['batch_total_s']:.3f}s, "
            f"amortized speedup {summary['amortized_speedup']:.2f}x, "
            f"exports={summary['engine_stats']['exports']}, "
            f"pool_spawns={summary['engine_stats']['pool_spawns']})"
        )
        tables.append(format_series(rows, title=title))
    return "\n\n".join(tables), payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke run: small data, small grid"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="fleet size for the sharded side"
    )
    add_history_arguments(parser)
    args = parser.parse_args(argv)
    table, payload = run(args.quick, max(1, args.workers))
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    TXT_PATH.write_text(table + "\n")
    history = record_bench_run(
        "sweep",
        payload,
        OUT_DIR,
        headline={
            f"{label.split()[0]}_amortized_speedup": {
                "value": side["summary"]["amortized_speedup"],
                "better": "higher",
            }
            for label, side in payload["sides"].items()
        },
        config={"quick": args.quick, "workers": max(1, args.workers)},
        timestamp=args.timestamp,
        history_path=args.history,
    )
    print(f"\nwrote {TXT_PATH}\nwrote {OUT_DIR / 'BENCH_sweep.json'}")
    print(f"appended {history}")
    failed = False
    for label, side in payload["sides"].items():
        if side["summary"]["mismatches"]:
            print(f"RESULT MISMATCH on the {label} side")
            failed = True
        if side["summary"]["amortized_speedup"] <= 1.0:
            print(
                f"WARNING: no amortization win on the {label} side "
                f"({side['summary']['amortized_speedup']:.2f}x)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
