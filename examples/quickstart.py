"""Quickstart: mine social ties beyond homophily on the paper's toy network.

Walks the Fig. 1 dating network through the whole story of Section I:
support/confidence, why confidence misses GR4, how nhp surfaces it, and
a top-k mining run.

Run:  python examples/quickstart.py
"""

from repro import GR, Descriptor, MetricEngine, mine_top_k
from repro.datasets import toy_dating_network


def main() -> None:
    network = toy_dating_network()
    print(f"Toy dating network: {network}\n")

    engine = MetricEngine(network)
    dates = Descriptor({"TYPE": "dates"})

    # --- Example 1: men tended to prefer Asian women -------------------
    gr1 = GR(Descriptor({"SEX": "M"}), Descriptor({"SEX": "F", "RACE": "Asian"}), dates)
    m1 = engine.evaluate(gr1)
    print(f"GR1 {gr1}")
    print(f"    supp = {m1.support_count}/{m1.num_edges}, conf = {m1.confidence:.1%}")

    gr2 = GR(
        Descriptor({"SEX": "M", "RACE": "Asian"}),
        Descriptor({"SEX": "F", "RACE": "Asian"}),
        dates,
    )
    m2 = engine.evaluate(gr2)
    print(f"GR2 {gr2}")
    print(f"    supp = {m2.support_count} -> Asian men are the exception\n")

    # --- Example 2: the homophily trap ---------------------------------
    gr3 = GR(
        Descriptor({"SEX": "F", "EDU": "Grad"}),
        Descriptor({"SEX": "M", "EDU": "Grad"}),
        dates,
    )
    gr4 = GR(
        Descriptor({"SEX": "F", "EDU": "Grad"}),
        Descriptor({"SEX": "M", "EDU": "College"}),
        dates,
    )
    m3, m4 = engine.evaluate(gr3), engine.evaluate(gr4)
    print(f"GR3 {gr3}")
    print(f"    conf = {m3.confidence:.1%}  (expected: EDU is homophilous)")
    print(f"GR4 {gr4}")
    print(f"    conf = {m4.confidence:.1%}  -- buried by the confidence ranking")
    print(
        f"    nhp  = {m4.nhp:.1%}  -- exclude the {m4.homophily_count} homophily-"
        f"effect edges and the preference is perfect\n"
    )

    # --- Top-k mining ---------------------------------------------------
    print("Top-5 GRs by non-homophily preference (minSupp=2, minNhp=50%):")
    result = mine_top_k(network, k=5, min_support=2, min_nhp=0.5)
    for i, mined in enumerate(result, 1):
        m = mined.metrics
        print(
            f"  {i}. {mined.gr}\n"
            f"     nhp = {m.nhp:.1%}; supp = {m.support_count} (conf = {m.confidence:.1%})"
        )
    stats = result.stats
    print(
        f"\n[{stats.grs_examined} GRs examined, "
        f"{stats.pruned_by_nhp} subtrees cut by nhp pruning, "
        f"{stats.runtime_seconds * 1000:.1f} ms]"
    )


if __name__ == "__main__":
    main()
