"""Section VI-B on the synthetic Pokec network: Table IIa + the
hypothesis-formulation cycle of Remark 3.

Mines the top GRs by nhp and by conf side by side, then reproduces the
paper's two worked hypothesis cycles:

* P5  — (L:Sexual Partner) → (G:Female), specialized per gender;
* P207 — (G:Male, A:25-34) → (A:18-24), the younger-partner asymmetry.

Run:  python examples/pokec_interestingness.py [--edges N]
"""

import argparse

from repro import ConfidenceMiner, GR, Descriptor, GRMiner
from repro.analysis import HypothesisExplorer, format_table2
from repro.datasets import synthetic_pokec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=60_000)
    parser.add_argument("--sources", type=int, default=6_000)
    args = parser.parse_args()

    print("Generating synthetic Pokec-style network ...")
    network = synthetic_pokec(num_sources=args.sources, num_edges=args.edges)
    print(f"  {network}\n")

    # --- Table IIa ------------------------------------------------------
    params = dict(min_support=0.001, k=300)
    nhp_result = GRMiner(network, min_score=0.5, **params).mine()
    conf_result = ConfidenceMiner(network, min_score=0.5, **params).mine()
    print(format_table2(nhp_result, conf_result, rows=5, title="Table IIa (synthetic)"))

    # --- Hypothesis cycle: P5 -------------------------------------------
    explorer = HypothesisExplorer(network)
    print("\n--- Remark 3 cycle, seed P5 ---")
    p5 = GR(Descriptor({"Looking-For": "Sexual Partner"}), Descriptor({"Gender": "Female"}))
    print(explorer.evaluate(p5, "P5       "))
    male = explorer.add_condition(p5, "lhs", "Gender", "Male")
    print(explorer.evaluate(male, "P5 male  "))
    female = explorer.replace_value(
        explorer.replace_value(male, "lhs", "Gender", "Female"), "rhs", "Gender", "Male"
    )
    print(explorer.evaluate(female, "P5 female"))
    print("=> the gender asymmetry of Section VI-B")

    # --- Hypothesis cycle: P207 ------------------------------------------
    print("\n--- Remark 3 cycle, seed P207 ---")
    p207 = GR(
        Descriptor({"Gender": "Male", "Age": "25-34"}), Descriptor({"Age": "18-24"})
    )
    print(explorer.evaluate(p207, "P207      "))
    p207f = explorer.replace_value(p207, "lhs", "Gender", "Female")
    print(explorer.evaluate(p207f, "P207 femal"))
    print("=> women much less prefer younger partners than men")

    # --- Data-distribution probe (the P2 explanation) --------------------
    print("\n--- Value distribution probe (why P2 holds) ---")
    shares = explorer.value_distribution("Education")
    for value in ("Secondary", "Training", "Basic"):
        print(f"  Education={value}: {shares[value]:.2%} of profiles")
    print("=> Secondary dwarfs Training, matching the paper's explanation of P2")


if __name__ == "__main__":
    main()
