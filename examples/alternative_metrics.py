"""Section VII extensions: ranking GRs with alternative metrics.

Shows the same DBLP-style network mined under five interestingness
metrics and how lift corrects the data-skew artifact the paper calls out
for D1: ``(A:AI) → (P:Poor)`` looks strong under confidence only because
91% of authors are Poor; its lift is ≈ 1.

Run:  python examples/alternative_metrics.py
"""

from repro import AlternativeMetricMiner, GR, Descriptor, GRMiner
from repro.core.interestingness import evaluate_alternatives
from repro.datasets import synthetic_dblp


def main() -> None:
    network = synthetic_dblp(num_authors=10_000, num_links=12_000)
    print(f"Network: {network}\n")

    # --- Anti-monotone alternatives mined directly -------------------------
    for metric, threshold in (("laplace", 0.5), ("gain", 0.0)):
        result = GRMiner(
            network, min_support=0.001, min_score=threshold, k=3, rank_by=metric
        ).mine()
        print(f"Top-3 by {metric} (threshold pushed into the search):")
        for m in result:
            print(f"  {m.gr}  {metric}={m.score:.4f}")
        print()

    # --- Post-processed metrics -------------------------------------------
    for metric in ("lift", "conviction", "piatetsky_shapiro"):
        result = AlternativeMetricMiner(
            network, metric=metric, min_support=0.001, k=3
        ).mine()
        print(f"Top-3 by {metric} (support sweep + post-processing):")
        for m in result:
            print(f"  {m.gr}  {metric}={m.score:.4f}")
        print()

    # --- The D1 skew correction ---------------------------------------------
    d1 = GR(Descriptor({"Area": "AI"}), Descriptor({"Productivity": "Poor"}))
    alt = evaluate_alternatives(network, d1)
    print(f"D1 {d1}")
    print(f"  conf = {alt.base.confidence:.1%} -- looks like a strong preference")
    print(f"  supp(r) = {alt.supp_r:.1%} of all edges end at a Poor author")
    print(f"  lift = {alt.lift:.2f} -- barely above base rate: data skew, not preference")


if __name__ == "__main__":
    main()
