"""Example 3: using GRs beyond homophily for product promotion.

A financial institution has a customer social network with JOB and
PRODUCT attributes.  The homophily play — promote Stocks to friends of
stock-holding lawyers — fails when those friends already hold or dislike
Stocks.  The *secondary bond* is what converts: among the friends who
did NOT buy Stocks, which product do they actually buy?

This script mines the network, surfaces the
``(JOB:Lawyer, PRODUCT:Stocks) → (PRODUCT:Bonds)`` tie, and compares the
implied adoption rates.

Run:  python examples/financial_promotion.py
"""

from repro import GR, Descriptor, GRMiner, MetricEngine
from repro.analysis import format_result
from repro.datasets import synthetic_financial


def main() -> None:
    network = synthetic_financial()
    print(f"Customer network: {network}\n")

    engine = MetricEngine(network)
    lawyer_stock = Descriptor({"JOB": "Lawyer", "PRODUCT": "Stocks"})

    # --- The homophily play ----------------------------------------------
    trivial = GR(lawyer_stock, Descriptor({"PRODUCT": "Stocks"}))
    m = engine.evaluate(trivial)
    print(f"Homophily GR: {trivial}")
    print(
        f"  conf = {m.confidence:.1%} -- but these friends already hold Stocks;"
        " promoting Stocks to them gains nothing.\n"
    )

    # --- Mining the secondary bond ----------------------------------------
    print("Mining top-10 non-trivial GRs from (Lawyer, Stocks) customers:")
    result = GRMiner(network, min_support=0.002, min_score=0.5, k=10).mine()
    print(format_result(result, limit=10))

    bonds = GR(lawyer_stock, Descriptor({"PRODUCT": "Bonds"}))
    mb = engine.evaluate(bonds)
    print(f"\nActionable GR: {bonds}")
    print(f"  conf = {mb.confidence:.1%}  (looks weak under the standard metric)")
    print(
        f"  nhp  = {mb.nhp:.1%}  (among friends who did not buy Stocks, "
        f"{mb.nhp:.0%} bought Bonds)"
    )
    print(
        "\n=> Promote BONDS to the friends of stock-holding lawyers who have\n"
        "   not bought them yet: the high nhp implies a high adoption rate."
    )


if __name__ == "__main__":
    main()
