"""Section VI-C on the synthetic DBLP network: Table IIb + explanations.

Mines top-20 GRs by nhp and conf with the paper's parameters
(minSupp = 0.1%, minNhp = minConf = 50%, k = 20), then runs the two
data probes the paper uses to interpret the results:

* the Productivity distribution (91% Poor explains D1/D3/D5);
* the DB --often--> DM preference (D2) against area shares.

Run:  python examples/dblp_interestingness.py
"""

from repro import ConfidenceMiner, GR, Descriptor, GRMiner
from repro.analysis import HypothesisExplorer, format_table2
from repro.datasets import synthetic_dblp


def main() -> None:
    print("Generating synthetic DBLP-style network (paper scale) ...")
    network = synthetic_dblp()
    print(f"  {network}\n")

    params = dict(min_support=0.001, min_score=0.5, k=20)
    nhp_result = GRMiner(network, **params).mine()
    conf_result = ConfidenceMiner(network, **params).mine()
    print(format_table2(nhp_result, conf_result, rows=5, title="Table IIb (synthetic)"))
    print(
        f"\nDBLP mining runtime: {nhp_result.stats.runtime_seconds:.3f}s "
        "(the paper reports <= 0.483s in C++)"
    )

    explorer = HypothesisExplorer(network)

    # --- D1/D3/D5 explanation --------------------------------------------
    print("\n--- Why 'Poor' destinations dominate (D1, D3, D5) ---")
    shares = explorer.value_distribution("Productivity")
    for value, share in shares.items():
        print(f"  Productivity={value}: {share:.2%} of authors")
    print("=> most authors are students; co-authorship pairs them with advisors")

    # --- D2: the interdisciplinary DM tie --------------------------------
    print("\n--- D2: (A:DB) --often--> (A:DM) ---")
    d2 = GR(
        Descriptor({"Area": "DB"}),
        Descriptor({"Area": "DM"}),
        Descriptor({"Strength": "often"}),
    )
    h = explorer.evaluate(d2, "D2")
    print(h)
    area_shares = explorer.value_distribution("Area")
    print(f"  DM population share: {area_shares['DM']:.2%} (the smallest area)")
    print(
        "=> the preference is real, not data skew: DM is the least populous "
        "area yet receives most of DB's strong cross-area collaborations"
    )

    # --- D16 as a one-step variation of D2 --------------------------------
    print("\n--- D16 via variation: AI's counterpart ---")
    d16 = GR(
        Descriptor({"Area": "AI", "Productivity": "Good"}), Descriptor({"Area": "DM"})
    )
    print(explorer.evaluate(d16, "D16"))


if __name__ == "__main__":
    main()
